//! Trainable-parameter storage shared between model code, the autodiff
//! tape and the optimizers.
//!
//! Parameter values live behind `Arc` so that (a) recording them as tape
//! leaves is free, and (b) data-parallel workers can snapshot the whole
//! store by cloning `Arc`s. The optimizer mutates values through
//! [`Arc::make_mut`], which is copy-free while no worker holds a clone.

use std::sync::Arc;

use rand::Rng;

use crate::dense::Dense;

/// Identifier of a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

impl ParamId {
    /// The store-local index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A named collection of trainable matrices.
#[derive(Clone, Default)]
pub struct ParamStore {
    values: Vec<Arc<Dense>>,
    names: Vec<String>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter with an explicit initial value.
    pub fn add(&mut self, name: impl Into<String>, value: Dense) -> ParamId {
        self.values.push(Arc::new(value));
        self.names.push(name.into());
        ParamId(self.values.len() - 1)
    }

    /// Registers a `rows × cols` parameter with Xavier/Glorot-uniform
    /// initialization: `U(−a, a)` with `a = sqrt(6 / (rows + cols))`.
    pub fn xavier(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        rng: &mut impl Rng,
    ) -> ParamId {
        let a = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols).map(|_| rng.gen_range(-a..=a)).collect();
        self.add(name, Dense::from_vec(rows, cols, data))
    }

    /// Registers a zero-initialized parameter (biases, BN shift).
    pub fn zeros(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> ParamId {
        self.add(name, Dense::zeros(rows, cols))
    }

    /// Registers a one-initialized parameter (BN scale).
    pub fn ones(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> ParamId {
        self.add(name, Dense::full(rows, cols, 1.0))
    }

    /// Shared handle to a parameter's value.
    pub fn value(&self, id: ParamId) -> &Arc<Dense> {
        &self.values[id.index()]
    }

    /// Mutable access for optimizer updates (clones on write only if a
    /// worker still holds the `Arc`).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Dense {
        Arc::make_mut(&mut self.values[id.index()])
    }

    /// Parameter name (for debugging / serialization).
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.index()]
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of trainable scalars.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(|v| v.len()).sum()
    }

    /// Iterator over `(id, name, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Arc<Dense>)> {
        self.values
            .iter()
            .zip(&self.names)
            .enumerate()
            .map(|(i, (v, n))| (ParamId(i), n.as_str(), v))
    }

    /// All parameter ids, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }

    /// Deep-copies all values (checkpointing for "best validation weights").
    pub fn snapshot(&self) -> Vec<Dense> {
        self.values.iter().map(|v| (**v).clone()).collect()
    }

    /// Restores values from a [`ParamStore::snapshot`].
    ///
    /// # Panics
    /// Panics if the snapshot does not match the store's layout.
    pub fn restore(&mut self, snapshot: &[Dense]) {
        assert_eq!(snapshot.len(), self.values.len(), "snapshot layout mismatch");
        for (slot, value) in self.values.iter_mut().zip(snapshot) {
            assert_eq!(slot.shape(), value.shape(), "snapshot shape mismatch");
            *slot = Arc::new(value.clone());
        }
    }
}

/// Per-parameter gradient accumulator aligned with a [`ParamStore`].
#[derive(Clone, Default)]
pub struct GradStore {
    grads: Vec<Option<Dense>>,
}

impl GradStore {
    /// Creates an accumulator sized for `store`.
    pub fn for_store(store: &ParamStore) -> Self {
        GradStore { grads: (0..store.len()).map(|_| None).collect() }
    }

    /// Adds `delta` into the slot for `id`.
    pub fn accumulate(&mut self, id: ParamId, delta: Dense) {
        match &mut self.grads[id.index()] {
            Some(g) => g.add_assign(&delta),
            slot => *slot = Some(delta),
        }
    }

    /// Merges another accumulator into this one (data-parallel reduce).
    pub fn merge(&mut self, other: GradStore) {
        assert_eq!(self.grads.len(), other.grads.len(), "grad store layout mismatch");
        for (mine, theirs) in self.grads.iter_mut().zip(other.grads) {
            if let Some(delta) = theirs {
                match mine {
                    Some(g) => g.add_assign(&delta),
                    slot => *slot = Some(delta),
                }
            }
        }
    }

    /// Scales every accumulated gradient by `k` (e.g. 1/batch).
    pub fn scale(&mut self, k: f32) {
        for g in self.grads.iter_mut().flatten() {
            g.scale_assign(k);
        }
    }

    /// Gradient for `id`, if any was accumulated.
    pub fn get(&self, id: ParamId) -> Option<&Dense> {
        self.grads.get(id.index()).and_then(|g| g.as_ref())
    }

    /// Whether every accumulated gradient value is finite. A single
    /// NaN/Inf entry would poison the Adam moment buffers permanently,
    /// so trainers check this before applying a step.
    pub fn all_finite(&self) -> bool {
        self.grads
            .iter()
            .flatten()
            .all(|g| g.as_slice().iter().all(|v| v.is_finite()))
    }

    /// Global L2 norm over all accumulated gradients.
    pub fn global_norm(&self) -> f32 {
        self.grads.iter().flatten().map(Dense::frob_sq).sum::<f32>().sqrt()
    }

    /// Clips gradients to a maximum global L2 norm, returning the factor
    /// applied (1.0 if no clipping happened).
    pub fn clip_global_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            let k = max_norm / norm;
            self.scale(k);
            k
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let id = store.xavier("w", 10, 20, &mut rng);
        let a = (6.0f32 / 30.0).sqrt();
        assert!(store.value(id).as_slice().iter().all(|v| v.abs() <= a));
        assert_eq!(store.num_scalars(), 200);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut store = ParamStore::new();
        let id = store.add("w", Dense::row_vector(&[1.0, 2.0]));
        let snap = store.snapshot();
        store.value_mut(id).set(0, 0, 99.0);
        store.restore(&snap);
        assert_eq!(store.value(id).get(0, 0), 1.0);
    }

    #[test]
    fn grad_store_merge_and_scale() {
        let mut store = ParamStore::new();
        let id = store.zeros("w", 1, 2);
        let mut g1 = GradStore::for_store(&store);
        let mut g2 = GradStore::for_store(&store);
        g1.accumulate(id, Dense::row_vector(&[1.0, 2.0]));
        g2.accumulate(id, Dense::row_vector(&[3.0, 4.0]));
        g1.merge(g2);
        g1.scale(0.5);
        assert!(g1.get(id).unwrap().approx_eq(&Dense::row_vector(&[2.0, 3.0]), 1e-6));
    }

    #[test]
    fn clip_global_norm_scales_down() {
        let mut store = ParamStore::new();
        let id = store.zeros("w", 1, 2);
        let mut g = GradStore::for_store(&store);
        g.accumulate(id, Dense::row_vector(&[3.0, 4.0]));
        let k = g.clip_global_norm(1.0);
        assert!((k - 0.2).abs() < 1e-6);
        assert!((g.global_norm() - 1.0).abs() < 1e-5);
    }
}
