//! Elementwise and broadcast kernels shared by the tape's forward and
//! backward passes.

use crate::dense::Dense;

/// `a + r` where `r` is a 1×c row vector broadcast over the rows of `a`.
pub fn add_row_broadcast(a: &Dense, r: &Dense) -> Dense {
    assert_eq!(r.rows(), 1, "broadcast operand must be a row vector");
    assert_eq!(a.cols(), r.cols(), "broadcast width mismatch");
    let mut out = a.clone();
    let rv = r.as_slice();
    for i in 0..out.rows() {
        for (o, &b) in out.row_mut(i).iter_mut().zip(rv) {
            *o += b;
        }
    }
    out
}

/// `a ∘ r` where `r` is a 1×c row vector broadcast over the rows of `a`.
pub fn mul_row_broadcast(a: &Dense, r: &Dense) -> Dense {
    assert_eq!(r.rows(), 1, "broadcast operand must be a row vector");
    assert_eq!(a.cols(), r.cols(), "broadcast width mismatch");
    let mut out = a.clone();
    let rv = r.as_slice();
    for i in 0..out.rows() {
        for (o, &b) in out.row_mut(i).iter_mut().zip(rv) {
            *o *= b;
        }
    }
    out
}

/// `a ∘ c` where `c` is an n×1 column vector broadcast over the columns
/// of `a` (each row of `a` scaled by its row's entry of `c`).
pub fn mul_col_broadcast(a: &Dense, c: &Dense) -> Dense {
    assert_eq!(c.cols(), 1, "broadcast operand must be a column vector");
    assert_eq!(a.rows(), c.rows(), "broadcast height mismatch");
    let mut out = a.clone();
    for i in 0..out.rows() {
        let k = c.get(i, 0);
        for o in out.row_mut(i) {
            *o *= k;
        }
    }
    out
}

/// Row sums as an n×1 column vector.
pub fn row_sums(a: &Dense) -> Dense {
    let data = (0..a.rows()).map(|r| a.row(r).iter().sum()).collect();
    Dense::from_vec(a.rows(), 1, data)
}

/// Broadcasts a 1×c row vector to an n×c matrix.
pub fn broadcast_rows(r: &Dense, n: usize) -> Dense {
    assert_eq!(r.rows(), 1, "broadcast operand must be a row vector");
    let mut out = Dense::zeros(n, r.cols());
    for i in 0..n {
        out.row_mut(i).copy_from_slice(r.as_slice());
    }
    out
}

/// Numerically-stable `log(1 + exp(x))`.
#[inline]
pub fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Numerically-stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Binary cross-entropy with logits, averaged over all elements.
///
/// `loss = mean( max(x,0) − x·y + log(1+exp(−|x|)) )`, the standard
/// stable formulation; `weights` optionally rescales each element
/// (used for class-imbalance weighting).
pub fn bce_with_logits_mean(logits: &Dense, targets: &Dense, weights: Option<&Dense>) -> f32 {
    assert_eq!(logits.shape(), targets.shape(), "bce shape mismatch");
    if let Some(w) = weights {
        assert_eq!(w.shape(), logits.shape(), "bce weight shape mismatch");
    }
    let n = logits.len() as f32;
    let mut acc = 0.0f64;
    for i in 0..logits.len() {
        let x = logits.as_slice()[i];
        let y = targets.as_slice()[i];
        let term = x.max(0.0) - x * y + softplus(-x.abs());
        let w = weights.map_or(1.0, |w| w.as_slice()[i]);
        acc += (term * w) as f64;
    }
    (acc / n as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_add_mul() {
        let a = Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let r = Dense::row_vector(&[10.0, -1.0]);
        assert!(add_row_broadcast(&a, &r)
            .approx_eq(&Dense::from_rows(&[&[11.0, 1.0], &[13.0, 3.0]]), 1e-6));
        assert!(mul_row_broadcast(&a, &r)
            .approx_eq(&Dense::from_rows(&[&[10.0, -2.0], &[30.0, -4.0]]), 1e-6));
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn softplus_limits() {
        assert!((softplus(0.0) - (2.0f32).ln()).abs() < 1e-6);
        assert_eq!(softplus(100.0), 100.0);
        assert!(softplus(-100.0) < 1e-6);
    }

    #[test]
    fn bce_matches_naive_formula() {
        let x = Dense::row_vector(&[0.3, -1.2, 2.0]);
        let y = Dense::row_vector(&[1.0, 0.0, 1.0]);
        let stable = bce_with_logits_mean(&x, &y, None);
        let mut naive = 0.0;
        for i in 0..3 {
            let p = sigmoid(x.as_slice()[i]);
            let t = y.as_slice()[i];
            naive += -(t * p.ln() + (1.0 - t) * (1.0 - p).ln());
        }
        naive /= 3.0;
        assert!((stable - naive).abs() < 1e-5, "{stable} vs {naive}");
    }
}
