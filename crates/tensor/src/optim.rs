//! First-order optimizers over a [`ParamStore`].

use crate::dense::Dense;
use crate::param::{GradStore, ParamStore};

/// Plain stochastic gradient descent (used by tests and the ICS-GNN
/// baseline's tiny per-query models).
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Applies one descent step: `θ ← θ − lr · g`.
    pub fn step(&self, params: &mut ParamStore, grads: &GradStore) {
        for id in params.ids().collect::<Vec<_>>() {
            if let Some(g) = grads.get(id) {
                let g = g.clone();
                params.value_mut(id).add_scaled_assign(&g, -self.lr);
            }
        }
    }
}

/// Configuration for [`Adam`]. Defaults match the paper's training setup
/// (learning rate 0.001) and the standard Adam moments.
#[derive(Clone, Copy, Debug)]
pub struct AdamConfig {
    /// Learning rate (paper: 0.001).
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// L2 weight decay (0 disables).
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0 }
    }
}

/// The Adam optimizer (Kingma & Ba), with optional decoupled weight decay.
pub struct Adam {
    config: AdamConfig,
    step: u64,
    m: Vec<Dense>,
    v: Vec<Dense>,
}

/// A deep copy of an [`Adam`] optimizer's mutable state, captured for
/// crash-resume checkpoints and divergence rollback. Restoring it makes
/// the optimizer continue exactly as if the intervening steps never
/// happened.
#[derive(Clone, Debug)]
pub struct AdamState {
    /// Steps taken when the state was captured.
    pub step: u64,
    /// First-moment buffers, one per parameter.
    pub m: Vec<Dense>,
    /// Second-moment buffers, one per parameter.
    pub v: Vec<Dense>,
}

impl Adam {
    /// Creates an Adam optimizer with moment buffers matching `params`.
    pub fn new(config: AdamConfig, params: &ParamStore) -> Self {
        let m = params.iter().map(|(_, _, p)| Dense::zeros(p.rows(), p.cols())).collect();
        let v = params.iter().map(|(_, _, p)| Dense::zeros(p.rows(), p.cols())).collect();
        Adam { config, step: 0, m, v }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Current configuration.
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.config.lr
    }

    /// Changes the learning rate (divergence recovery halves it; schedules
    /// may decay it).
    pub fn set_lr(&mut self, lr: f32) {
        self.config.lr = lr;
    }

    /// Deep-copies the optimizer state (step counter + moment buffers)
    /// for checkpointing and divergence rollback.
    pub fn state(&self) -> AdamState {
        AdamState { step: self.step, m: self.m.clone(), v: self.v.clone() }
    }

    /// Restores state captured by [`Adam::state`].
    ///
    /// # Panics
    /// Panics if the state's moment buffers do not match this optimizer's
    /// parameter layout.
    pub fn restore_state(&mut self, state: AdamState) {
        assert_eq!(state.m.len(), self.m.len(), "adam state layout mismatch");
        for ((m, v), (sm, sv)) in
            self.m.iter().zip(&self.v).zip(state.m.iter().zip(&state.v))
        {
            assert_eq!(m.shape(), sm.shape(), "adam moment shape mismatch");
            assert_eq!(v.shape(), sv.shape(), "adam moment shape mismatch");
        }
        self.step = state.step;
        self.m = state.m;
        self.v = state.v;
    }

    /// Applies one Adam update using the accumulated `grads`.
    ///
    /// Parameters without gradients are left untouched (their moment
    /// buffers also do not decay, matching "lazy" Adam semantics — the
    /// right behaviour for per-query sparse participation).
    pub fn step(&mut self, params: &mut ParamStore, grads: &GradStore) {
        self.step += 1;
        let c = self.config;
        let bc1 = 1.0 - c.beta1.powi(self.step as i32);
        let bc2 = 1.0 - c.beta2.powi(self.step as i32);
        for id in params.ids().collect::<Vec<_>>() {
            let Some(g) = grads.get(id) else { continue };
            let i = id.index();
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            debug_assert_eq!(m.shape(), g.shape(), "moment/grad shape mismatch");
            let theta = params.value_mut(id);
            let (ms, vs, gs, ts) =
                (m.as_mut_slice(), v.as_mut_slice(), g.as_slice(), theta.as_mut_slice());
            for j in 0..gs.len() {
                let grad = gs[j] + c.weight_decay * ts[j];
                ms[j] = c.beta1 * ms[j] + (1.0 - c.beta1) * grad;
                vs[j] = c.beta2 * vs[j] + (1.0 - c.beta2) * grad * grad;
                let m_hat = ms[j] / bc1;
                let v_hat = vs[j] / bc2;
                ts[j] -= c.lr * m_hat / (v_hat.sqrt() + c.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::GradStore;

    /// Minimizing f(x) = (x−3)² should converge to 3 with both optimizers.
    fn quadratic_grad(x: f32) -> f32 {
        2.0 * (x - 3.0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut params = ParamStore::new();
        let id = params.add("x", Dense::row_vector(&[0.0]));
        let opt = Sgd::new(0.1);
        for _ in 0..100 {
            let x = params.value(id).get(0, 0);
            let mut grads = GradStore::for_store(&params);
            grads.accumulate(id, Dense::row_vector(&[quadratic_grad(x)]));
            opt.step(&mut params, &grads);
        }
        assert!((params.value(id).get(0, 0) - 3.0).abs() < 1e-4);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut params = ParamStore::new();
        let id = params.add("x", Dense::row_vector(&[0.0]));
        let mut opt = Adam::new(AdamConfig { lr: 0.1, ..Default::default() }, &params);
        for _ in 0..500 {
            let x = params.value(id).get(0, 0);
            let mut grads = GradStore::for_store(&params);
            grads.accumulate(id, Dense::row_vector(&[quadratic_grad(x)]));
            opt.step(&mut params, &grads);
        }
        assert!((params.value(id).get(0, 0) - 3.0).abs() < 1e-3);
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn adam_skips_parameters_without_gradients() {
        let mut params = ParamStore::new();
        let id_a = params.add("a", Dense::row_vector(&[1.0]));
        let id_b = params.add("b", Dense::row_vector(&[1.0]));
        let mut opt = Adam::new(AdamConfig::default(), &params);
        let mut grads = GradStore::for_store(&params);
        grads.accumulate(id_a, Dense::row_vector(&[1.0]));
        opt.step(&mut params, &grads);
        assert_ne!(params.value(id_a).get(0, 0), 1.0);
        assert_eq!(params.value(id_b).get(0, 0), 1.0);
    }
}
