#![warn(missing_docs)]

//! # qdgnn-tensor
//!
//! A small, self-contained f32 tensor library purpose-built for the
//! QD-GNN / AQD-GNN models of Jiang et al. (PVLDB'22):
//!
//! * [`Dense`] — row-major dense matrices with cache-friendly, optionally
//!   multi-threaded kernels (matmul, transposed products, elementwise ops);
//! * [`Csr`] — compressed sparse row matrices for adjacency, attribute and
//!   one-hot query inputs, with sparse–dense products (SpMM);
//! * [`Tape`] — a reverse-mode automatic-differentiation tape over those
//!   matrices, with an enum-dispatched operator set sufficient to express
//!   every equation in the paper (GCN propagation, self-feature modelling,
//!   bipartite propagation, batch normalization, dropout, BCE loss);
//! * [`ParamStore`] / [`optim`] — trainable-parameter storage plus SGD and
//!   Adam optimizers.
//!
//! The library is deterministic: all randomness is injected by the caller
//! through seeded RNGs, and all reductions use a fixed order.

pub mod alloc_tuning;
pub mod dense;
pub mod ops;
pub mod optim;
pub mod param;
pub mod sanitize;
pub mod sparse;
pub mod tape;

/// Shape/bounds assertion that stays live in release builds under
/// `--features sanitize`; a plain `debug_assert!` otherwise.
#[macro_export]
macro_rules! sanitize_assert {
    ($($arg:tt)*) => {{
        #[cfg(feature = "sanitize")]
        assert!($($arg)*);
        #[cfg(not(feature = "sanitize"))]
        debug_assert!($($arg)*);
    }};
}

pub use alloc_tuning::tune_for_batch_serving;
pub use dense::Dense;
pub use optim::{Adam, AdamConfig, AdamState, Sgd};
pub use param::{GradStore, ParamId, ParamStore};
pub use sparse::Csr;
pub use tape::{Tape, Var};

/// Library-wide epsilon used by numerically-guarded kernels
/// (batch-norm denominators, log arguments).
pub const EPS: f32 = 1e-5;
