//! Row-major dense f32 matrices and their kernels.
//!
//! The kernels are written for the shapes that dominate GNN training:
//! tall-skinny activations (`n × 128`) multiplied by small square weight
//! matrices (`128 × 128`). The matmul uses an `i-k-j` loop order so the
//! innermost loop is a contiguous AXPY over the output row, which LLVM
//! auto-vectorizes; large products are additionally split across threads
//! with `crossbeam::thread::scope`.

use std::fmt;

/// Number of multiply-accumulate operations above which [`Dense::matmul`]
/// switches to the multi-threaded kernel.
const PARALLEL_FLOP_THRESHOLD: usize = 4_000_000;

/// A row-major dense matrix of `f32`.
///
/// Cloning is a deep copy; the autodiff tape wraps values in `Arc` so that
/// clones on the hot path are reference-counted instead.
///
/// Every buffer is accounted to the obs memory registry on construction
/// and on drop (zero-cost no-ops unless `qdgnn-obs/enabled` is on), so
/// `mem.live_bytes` / `mem.peak_bytes` track tensor heap usage exactly.
#[derive(PartialEq)]
pub struct Dense {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Clone for Dense {
    fn clone(&self) -> Self {
        // Manual impl so the copy's buffer is accounted like any other.
        Dense::tracked(self.rows, self.cols, self.data.clone())
    }
}

impl Drop for Dense {
    fn drop(&mut self) {
        qdgnn_obs::mem_free(self.heap_bytes());
    }
}

impl Dense {
    /// The sole constructor: accounts the buffer, then builds the value.
    /// Buffers never grow after construction (no method reallocates
    /// `data`), so the capacity freed on drop equals the one counted here.
    #[inline]
    fn tracked(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        let m = Dense { rows, cols, data };
        qdgnn_obs::mem_alloc(m.heap_bytes());
        m
    }

    /// Bytes of heap this matrix owns (its buffer's capacity).
    #[inline]
    pub fn heap_bytes(&self) -> u64 {
        (self.data.capacity() * std::mem::size_of::<f32>()) as u64
    }

    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Dense::tracked(rows, cols, vec![0.0; rows * cols])
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Dense::tracked(rows, cols, vec![value; rows * cols])
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Dense::tracked(rows, cols, data)
    }

    /// Creates a matrix from nested row slices (test/builder convenience).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Dense::tracked(r, c, data)
    }

    /// Creates a 1×`n` row vector.
    pub fn row_vector(values: &[f32]) -> Self {
        Dense::tracked(1, values.len(), values.to_vec())
    }

    /// Creates an `n`×1 column vector.
    pub fn column_vector(values: &[f32]) -> Self {
        Dense::tracked(values.len(), 1, values.to_vec())
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Dense::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        crate::sanitize_assert!(
            r < self.rows && c < self.cols,
            "Dense::get out of bounds: [{r},{c}] in a {}x{} matrix",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        crate::sanitize_assert!(
            r < self.rows && c < self.cols,
            "Dense::set out of bounds: [{r},{c}] in a {}x{} matrix",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow row `r` mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Consumes the matrix, returning its row-major data.
    ///
    /// The buffer leaves memory accounting here: it is counted as freed
    /// even though the returned `Vec` keeps it alive (only tensor-owned
    /// buffers are tracked).
    pub fn into_vec(mut self) -> Vec<f32> {
        let data = std::mem::take(&mut self.data);
        // `self` now holds a zero-capacity buffer; its Drop frees 0 bytes,
        // so release the real buffer's bytes explicitly.
        qdgnn_obs::mem_free((data.capacity() * std::mem::size_of::<f32>()) as u64);
        data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Dense {
        let mut out = Dense::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// `self * other` (dense × dense).
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Dense) -> Dense {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Dense::zeros(self.rows, other.cols);
        let flops = self.rows * self.cols * other.cols;
        if flops >= PARALLEL_FLOP_THRESHOLD {
            matmul_parallel(self, other, &mut out);
        } else {
            matmul_rows(self, other, out.as_mut_slice(), 0, self.rows);
        }
        out
    }

    /// `selfᵀ * other` without materializing the transpose.
    ///
    /// Used by backward passes (`dW = Xᵀ · dY`).
    pub fn transpose_matmul(&self, other: &Dense) -> Dense {
        assert_eq!(
            self.rows, other.rows,
            "transpose_matmul shape mismatch: {}x{}^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Dense::zeros(self.cols, other.cols);
        // out[i][j] = sum_k self[k][i] * other[k][j]
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                // qdgnn-analyze: allow(QD002, reason = "exact-zero sparsity skip: one-hot query inputs make most entries bit-exact 0.0; skipping them is an optimization, not a semantic branch")
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * b_row.len()..(i + 1) * b_row.len()];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * otherᵀ` without materializing the transpose.
    ///
    /// Used by backward passes (`dX = dY · Wᵀ`).
    pub fn matmul_transpose(&self, other: &Dense) -> Dense {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose shape mismatch: {}x{} * {}x{}^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Dense::zeros(self.rows, other.rows);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let out_row = out.row_mut(r);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (a, b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// Elementwise `self += other`.
    pub fn add_assign(&mut self, other: &Dense) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise `self += scale * other` (AXPY).
    pub fn add_scaled_assign(&mut self, other: &Dense, scale: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Elementwise sum, returning a new matrix.
    pub fn add(&self, other: &Dense) -> Dense {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Elementwise difference, returning a new matrix.
    pub fn sub(&self, other: &Dense) -> Dense {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Dense::tracked(self.rows, self.cols, data)
    }

    /// Elementwise (Hadamard) product, returning a new matrix.
    pub fn hadamard(&self, other: &Dense) -> Dense {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect();
        Dense::tracked(self.rows, self.cols, data)
    }

    /// Multiplies every element by `k` in place.
    pub fn scale_assign(&mut self, k: f32) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Returns `k * self`.
    pub fn scaled(&self, k: f32) -> Dense {
        let mut out = self.clone();
        out.scale_assign(k);
        out
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Dense {
        let data = self.data.iter().map(|&v| f(v)).collect();
        Dense::tracked(self.rows, self.cols, data)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Column sums as a 1×cols row vector.
    pub fn col_sums(&self) -> Dense {
        let mut out = Dense::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Column means as a 1×cols row vector.
    pub fn col_means(&self) -> Dense {
        let mut out = self.col_sums();
        if self.rows > 0 {
            out.scale_assign(1.0 / self.rows as f32);
        }
        out
    }

    /// Horizontal concatenation of matrices with equal row counts.
    ///
    /// # Panics
    /// Panics if `parts` is empty or row counts differ.
    pub fn concat_cols(parts: &[&Dense]) -> Dense {
        assert!(!parts.is_empty(), "concat_cols of zero matrices");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Dense::zeros(rows, cols);
        for r in 0..rows {
            let out_row = out.row_mut(r);
            let mut offset = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "concat_cols row mismatch");
                out_row[offset..offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Extracts the column range `[start, start + width)` into a new matrix.
    pub fn slice_cols(&self, start: usize, width: usize) -> Dense {
        assert!(start + width <= self.cols, "slice_cols out of range");
        let mut out = Dense::zeros(self.rows, width);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..start + width]);
        }
        out
    }

    /// Gathers the given rows into a new matrix (`out[i] = self[rows[i]]`).
    pub fn gather_rows(&self, rows: &[usize]) -> Dense {
        let mut out = Dense::zeros(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            assert!(r < self.rows, "gather_rows index {r} out of range");
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Vertically tiles the matrix `k` times (`out` has `k · rows` rows;
    /// block `i` is a copy of `self`). Used by batched serving to repeat
    /// cached graph-branch activations once per query in a batch.
    pub fn tile_rows(&self, k: usize) -> Dense {
        assert!(k > 0, "tile_rows repeat count must be positive");
        let mut out = Dense::zeros(self.rows * k, self.cols);
        let block = self.rows * self.cols;
        for chunk in out.data.chunks_mut(block.max(1)) {
            chunk.copy_from_slice(&self.data);
        }
        out
    }

    /// Maximum absolute element (0 for empty).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Squared Frobenius norm.
    pub fn frob_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// `true` if all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Approximate equality within `tol`, elementwise (shapes must match).
    pub fn approx_eq(&self, other: &Dense, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl fmt::Debug for Dense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Dense {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for r in 0..max_rows {
            write!(f, "  [")?;
            let max_cols = 8.min(self.cols);
            for c in 0..max_cols {
                write!(f, "{:9.4}", self.get(r, c))?;
                if c + 1 < max_cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > max_cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// Single-threaded kernel computing rows `[row_start, row_end)` of `a * b`
/// into `out` (full output buffer, row-major with `b.cols` columns).
fn matmul_rows(a: &Dense, b: &Dense, out: &mut [f32], row_start: usize, row_end: usize) {
    let n = b.cols;
    for r in row_start..row_end {
        let a_row = a.row(r);
        let out_row = &mut out[r * n..(r + 1) * n];
        for (k, &av) in a_row.iter().enumerate() {
            // qdgnn-analyze: allow(QD002, reason = "exact-zero sparsity skip: multiplying by bit-exact 0.0 contributes nothing; skip is an optimization")
            if av == 0.0 {
                continue;
            }
            let b_row = b.row(k);
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Multi-threaded matmul: splits output rows into contiguous chunks, one
/// per worker thread.
fn matmul_parallel(a: &Dense, b: &Dense, out: &mut Dense) {
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(a.rows);
    if threads <= 1 {
        matmul_rows(a, b, out.as_mut_slice(), 0, a.rows);
        return;
    }
    let n = b.cols;
    let chunk_rows = a.rows.div_ceil(threads);
    let chunks: Vec<&mut [f32]> = out.data.chunks_mut(chunk_rows * n).collect();
    crossbeam::thread::scope(|scope| {
        for (idx, chunk) in chunks.into_iter().enumerate() {
            let row_start = idx * chunk_rows;
            let row_end = (row_start + chunk.len() / n).min(a.rows);
            scope.spawn(move |_| {
                // Each chunk is a disjoint slice of output rows; recompute
                // with local row indices by shifting the base pointer.
                let local = chunk;
                for r in row_start..row_end {
                    let a_row = a.row(r);
                    let off = (r - row_start) * n;
                    let out_row = &mut local[off..off + n];
                    for (k, &av) in a_row.iter().enumerate() {
                        // qdgnn-analyze: allow(QD002, reason = "exact-zero sparsity skip: multiplying by bit-exact 0.0 contributes nothing; skip is an optimization")
                        if av == 0.0 {
                            continue;
                        }
                        let b_row = b.row(k);
                        for (o, &bv) in out_row.iter_mut().zip(b_row) {
                            *o += av * bv;
                        }
                    }
                }
            });
        }
    })
    .expect("matmul worker thread panicked");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_rows_repeats_blocks() {
        let a = Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let t = a.tile_rows(3);
        assert_eq!(t.shape(), (6, 2));
        for b in 0..3 {
            for r in 0..2 {
                for c in 0..2 {
                    assert_eq!(t.get(b * 2 + r, c), a.get(r, c));
                }
            }
        }
        assert!(a.tile_rows(1).approx_eq(&a, 0.0));
    }

    #[test]
    fn matmul_matches_manual() {
        let a = Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Dense::from_rows(&[&[7.0, 8.0, 9.0], &[10.0, 11.0, 12.0]]);
        let c = a.matmul(&b);
        let expect = Dense::from_rows(&[
            &[27.0, 30.0, 33.0],
            &[61.0, 68.0, 75.0],
            &[95.0, 106.0, 117.0],
        ]);
        assert!(c.approx_eq(&expect, 1e-6));
    }

    #[test]
    fn transpose_products_match_explicit_transpose() {
        let a = Dense::from_rows(&[&[1.0, -2.0, 0.5], &[3.0, 4.0, -1.0]]);
        let b = Dense::from_rows(&[&[2.0, 1.0], &[0.0, -1.0]]);
        let atb = a.transpose_matmul(&b);
        assert!(atb.approx_eq(&a.transpose().matmul(&b), 1e-6));

        let c = Dense::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let act = a.matmul_transpose(&c);
        assert!(act.approx_eq(&a.matmul(&c.transpose()), 1e-6));
    }

    #[test]
    fn parallel_matmul_matches_serial() {
        // Shapes chosen to exceed PARALLEL_FLOP_THRESHOLD.
        let n = 260;
        let mut a = Dense::zeros(n, n);
        let mut b = Dense::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a.set(i, j, ((i * 31 + j * 7) % 13) as f32 - 6.0);
                b.set(i, j, ((i * 17 + j * 3) % 11) as f32 - 5.0);
            }
        }
        let fast = a.matmul(&b);
        let mut slow = Dense::zeros(n, n);
        matmul_rows(&a, &b, slow.as_mut_slice(), 0, n);
        assert!(fast.approx_eq(&slow, 1e-3));
    }

    #[test]
    fn concat_and_slice_round_trip() {
        let a = Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Dense::from_rows(&[&[5.0], &[6.0]]);
        let cat = Dense::concat_cols(&[&a, &b]);
        assert_eq!(cat.shape(), (2, 3));
        assert!(cat.slice_cols(0, 2).approx_eq(&a, 0.0));
        assert!(cat.slice_cols(2, 1).approx_eq(&b, 0.0));
    }

    #[test]
    fn col_reductions() {
        let a = Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!(a.col_sums().approx_eq(&Dense::row_vector(&[4.0, 6.0]), 1e-6));
        assert!(a.col_means().approx_eq(&Dense::row_vector(&[2.0, 3.0]), 1e-6));
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
    }

    #[test]
    fn gather_rows_selects() {
        let a = Dense::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let g = a.gather_rows(&[2, 0]);
        assert!(g.approx_eq(&Dense::from_rows(&[&[3.0], &[1.0]]), 0.0));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Dense::zeros(2, 3);
        let b = Dense::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
