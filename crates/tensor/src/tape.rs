//! Reverse-mode automatic differentiation over [`Dense`] matrices.
//!
//! A [`Tape`] records every operation of a forward pass as a node holding
//! the operation's output value (behind an `Arc`, so leaves alias the
//! caller's storage at zero copy cost) and an [`Op`] describing how to
//! route gradients to its parents. [`Tape::backward`] then replays the
//! nodes in reverse topological order — which is simply reverse insertion
//! order, since parents are always created before children.
//!
//! The operator set is deliberately small but complete for the paper's
//! models: sparse and dense products, elementwise arithmetic, row
//! broadcasts (bias / batch-norm affine), column means (batch-norm
//! statistics), ReLU/Sigmoid, column concatenation (Feature Fusion), and
//! a fused numerically-stable BCE-with-logits loss.

use std::sync::Arc;

use crate::dense::Dense;
use crate::ops;
use crate::sparse::Csr;

/// Handle to a value recorded on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

impl Var {
    /// The tape-local index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// The recorded operation of a tape node.
enum Op {
    /// Input with no parents (parameter or constant).
    Leaf,
    /// Dense product `a · b`.
    Matmul { a: usize, b: usize },
    /// Sparse–dense product `m · b` where `m` is constant; `mt` is the
    /// precomputed transpose used by the backward pass.
    Spmm { mt: Arc<Csr>, b: usize },
    /// Block-diagonal sparse–dense product: `m` applied to each of
    /// `blocks` vertically-stacked row blocks of `b` (batched serving).
    SpmmBlocked { mt: Arc<Csr>, b: usize, blocks: usize },
    /// Elementwise `a + b`.
    Add { a: usize, b: usize },
    /// Elementwise `a − b`.
    Sub { a: usize, b: usize },
    /// Elementwise `a ∘ b`.
    Hadamard { a: usize, b: usize },
    /// Row-broadcast `a + r` with `r` a 1×c vector (bias add).
    AddRow { a: usize, r: usize },
    /// Row-broadcast `a ∘ r` with `r` a 1×c vector (batch-norm scale).
    MulRow { a: usize, r: usize },
    /// Column-broadcast `a ∘ c` with `c` an n×1 vector (attention gates).
    MulCol { a: usize, c: usize },
    /// Column means, n×c → 1×c.
    ColMean { a: usize },
    /// Elementwise `max(x, 0)`.
    Relu { a: usize },
    /// Elementwise logistic sigmoid.
    Sigmoid { a: usize },
    /// Elementwise `k · x`.
    Scale { a: usize, k: f32 },
    /// Elementwise `x + k`.
    AddScalar { a: usize },
    /// Elementwise `x^(−1/2)`; input must be positive.
    Rsqrt { a: usize },
    /// Horizontal concatenation of same-height matrices.
    ConcatCols { parts: Vec<usize> },
    /// Mean over all elements, producing a 1×1 scalar.
    MeanAll { a: usize },
    /// Fused mean binary cross-entropy with logits against a constant
    /// target (and optional constant per-element weights).
    BceWithLogitsMean { a: usize, target: Arc<Dense>, weights: Option<Arc<Dense>> },
}

impl Op {
    /// The op's name, used by the finiteness sanitizer so NaN/Inf
    /// reports name their producer.
    #[cfg_attr(not(feature = "sanitize"), allow(dead_code))]
    fn name(&self) -> &'static str {
        match self {
            Op::Leaf => "leaf",
            Op::Matmul { .. } => "matmul",
            Op::Spmm { .. } => "spmm",
            Op::SpmmBlocked { .. } => "spmm_blocked",
            Op::Add { .. } => "add",
            Op::Sub { .. } => "sub",
            Op::Hadamard { .. } => "hadamard",
            Op::AddRow { .. } => "add_row",
            Op::MulRow { .. } => "mul_row",
            Op::MulCol { .. } => "mul_col",
            Op::ColMean { .. } => "col_mean",
            Op::Relu { .. } => "relu",
            Op::Sigmoid { .. } => "sigmoid",
            Op::Scale { .. } => "scale",
            Op::AddScalar { .. } => "add_scalar",
            Op::Rsqrt { .. } => "rsqrt",
            Op::ConcatCols { .. } => "concat_cols",
            Op::MeanAll { .. } => "mean_all",
            Op::BceWithLogitsMean { .. } => "bce_with_logits_mean",
        }
    }

    /// Obs counter accumulating output bytes per op kind (static names:
    /// this runs on every tape push, a `format!` would allocate).
    fn bytes_metric(&self) -> &'static str {
        match self {
            Op::Leaf => "tensor.leaf.bytes",
            Op::Matmul { .. } => "tensor.matmul.bytes",
            Op::Spmm { .. } => "tensor.spmm.bytes",
            Op::SpmmBlocked { .. } => "tensor.spmm_blocked.bytes",
            Op::Add { .. } => "tensor.add.bytes",
            Op::Sub { .. } => "tensor.sub.bytes",
            Op::Hadamard { .. } => "tensor.hadamard.bytes",
            Op::AddRow { .. } => "tensor.add_row.bytes",
            Op::MulRow { .. } => "tensor.mul_row.bytes",
            Op::MulCol { .. } => "tensor.mul_col.bytes",
            Op::ColMean { .. } => "tensor.col_mean.bytes",
            Op::Relu { .. } => "tensor.relu.bytes",
            Op::Sigmoid { .. } => "tensor.sigmoid.bytes",
            Op::Scale { .. } => "tensor.scale.bytes",
            Op::AddScalar { .. } => "tensor.add_scalar.bytes",
            Op::Rsqrt { .. } => "tensor.rsqrt.bytes",
            Op::ConcatCols { .. } => "tensor.concat_cols.bytes",
            Op::MeanAll { .. } => "tensor.mean_all.bytes",
            Op::BceWithLogitsMean { .. } => "tensor.bce_with_logits.bytes",
        }
    }
}

struct Node {
    value: Arc<Dense>,
    op: Op,
}

/// Gradients produced by [`Tape::backward`].
///
/// Indexed by [`Var`]; variables the loss does not depend on have no entry.
pub struct Gradients {
    grads: Vec<Option<Dense>>,
}

impl Gradients {
    /// Gradient of the loss with respect to `var`, if it participated.
    pub fn get(&self, var: Var) -> Option<&Dense> {
        self.grads.get(var.index()).and_then(|g| g.as_ref())
    }

    /// Removes and returns the gradient for `var`.
    pub fn take(&mut self, var: Var) -> Option<Dense> {
        self.grads.get_mut(var.index()).and_then(|g| g.take())
    }
}

/// A gradient tape: records a forward computation and differentiates it.
///
/// ```
/// use std::sync::Arc;
/// use qdgnn_tensor::{Dense, Tape};
///
/// // loss = mean(relu(x · w))
/// let mut tape = Tape::new();
/// let x = tape.constant(Dense::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]));
/// let w = tape.leaf(Arc::new(Dense::from_rows(&[&[0.5], &[1.0]])));
/// let h = tape.matmul(x, w);
/// let r = tape.relu(h);
/// let loss = tape.mean_all(r);
/// let grads = tape.backward(loss);
/// assert_eq!(grads.get(w).unwrap().shape(), (2, 1));
/// ```
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape { nodes: Vec::new() }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Dense, op: Op) -> Var {
        self.push_arc(Arc::new(value), op)
    }

    fn push_arc(&mut self, value: Arc<Dense>, op: Op) -> Var {
        #[cfg(feature = "sanitize")]
        if !matches!(op, Op::Leaf) {
            crate::sanitize::check_finite(op.name(), &value);
        }
        if qdgnn_obs::enabled() {
            // Output bytes per op kind (for leaves: bytes the tape retains
            // by aliasing the caller's storage, not a fresh allocation —
            // the global alloc/live accounting lives in `Dense` itself).
            qdgnn_obs::counter(op.bytes_metric()).inc_by(value.heap_bytes());
        }
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Records a differentiable leaf sharing the caller's storage.
    pub fn leaf(&mut self, value: Arc<Dense>) -> Var {
        self.push_arc(value, Op::Leaf)
    }

    /// Records a constant leaf (identical to [`Tape::leaf`]; gradients for
    /// constants are simply never read back).
    pub fn constant(&mut self, value: Dense) -> Var {
        self.push(value, Op::Leaf)
    }

    /// The forward value of `var`.
    pub fn value(&self, var: Var) -> &Arc<Dense> {
        &self.nodes[var.index()].value
    }

    /// Shape of `var`'s value.
    pub fn shape(&self, var: Var) -> (usize, usize) {
        self.nodes[var.index()].value.shape()
    }

    /// Dense product `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let _t = qdgnn_obs::op_timer("tensor.matmul");
        let v = self.val(a).matmul(self.val(b));
        self.push(v, Op::Matmul { a: a.0, b: b.0 })
    }

    /// Sparse–dense product `m · b`; `m` is constant w.r.t. differentiation.
    ///
    /// `mt` must be the transpose of `m` (precompute once per graph with
    /// [`Csr::transpose`] and reuse across queries/epochs).
    pub fn spmm(&mut self, m: &Arc<Csr>, mt: &Arc<Csr>, b: Var) -> Var {
        let _t = qdgnn_obs::op_timer("tensor.spmm");
        crate::sanitize_assert!(
            m.rows() == mt.cols() && m.cols() == mt.rows(),
            "spmm: mt ({}x{}) is not the transpose of m ({}x{})",
            mt.rows(),
            mt.cols(),
            m.rows(),
            m.cols()
        );
        let v = m.spmm(self.val(b));
        self.push(v, Op::Spmm { mt: Arc::clone(mt), b: b.0 })
    }

    /// Block-diagonal sparse–dense product: `m` applied independently to
    /// each of `blocks` vertically-stacked row blocks of `b`. Equivalent
    /// to (and bit-identical with) `blocks` separate [`Tape::spmm`] calls
    /// on the stacked blocks; one tape node instead of `blocks`.
    pub fn spmm_blocked(&mut self, m: &Arc<Csr>, mt: &Arc<Csr>, b: Var, blocks: usize) -> Var {
        let _t = qdgnn_obs::op_timer("tensor.spmm_blocked");
        crate::sanitize_assert!(
            m.rows() == mt.cols() && m.cols() == mt.rows(),
            "spmm_blocked: mt ({}x{}) is not the transpose of m ({}x{})",
            mt.rows(),
            mt.cols(),
            m.rows(),
            m.cols()
        );
        let v = m.spmm_blocked(self.val(b), blocks);
        self.push(v, Op::SpmmBlocked { mt: Arc::clone(mt), b: b.0, blocks })
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let _t = qdgnn_obs::op_timer("tensor.add");
        let v = self.val(a).add(self.val(b));
        self.push(v, Op::Add { a: a.0, b: b.0 })
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let _t = qdgnn_obs::op_timer("tensor.sub");
        let v = self.val(a).sub(self.val(b));
        self.push(v, Op::Sub { a: a.0, b: b.0 })
    }

    /// Elementwise product.
    pub fn hadamard(&mut self, a: Var, b: Var) -> Var {
        let _t = qdgnn_obs::op_timer("tensor.hadamard");
        let v = self.val(a).hadamard(self.val(b));
        self.push(v, Op::Hadamard { a: a.0, b: b.0 })
    }

    /// Adds row vector `r` (1×c) to every row of `a` (bias add).
    pub fn add_row(&mut self, a: Var, r: Var) -> Var {
        let _t = qdgnn_obs::op_timer("tensor.add_row");
        let v = ops::add_row_broadcast(self.val(a), self.val(r));
        self.push(v, Op::AddRow { a: a.0, r: r.0 })
    }

    /// Multiplies every row of `a` by row vector `r` (1×c).
    pub fn mul_row(&mut self, a: Var, r: Var) -> Var {
        let _t = qdgnn_obs::op_timer("tensor.mul_row");
        let v = ops::mul_row_broadcast(self.val(a), self.val(r));
        self.push(v, Op::MulRow { a: a.0, r: r.0 })
    }

    /// Multiplies row `i` of `a` by the scalar `c[i]` (`c` is n×1) —
    /// per-vertex gating for attention fusion.
    pub fn mul_col(&mut self, a: Var, c: Var) -> Var {
        let _t = qdgnn_obs::op_timer("tensor.mul_col");
        let v = ops::mul_col_broadcast(self.val(a), self.val(c));
        self.push(v, Op::MulCol { a: a.0, c: c.0 })
    }

    /// Column means (n×c → 1×c).
    pub fn col_mean(&mut self, a: Var) -> Var {
        let _t = qdgnn_obs::op_timer("tensor.col_mean");
        let v = self.val(a).col_means();
        self.push(v, Op::ColMean { a: a.0 })
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let _t = qdgnn_obs::op_timer("tensor.relu");
        let v = self.val(a).map(|x| x.max(0.0));
        self.push(v, Op::Relu { a: a.0 })
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let _t = qdgnn_obs::op_timer("tensor.sigmoid");
        let v = self.val(a).map(ops::sigmoid);
        self.push(v, Op::Sigmoid { a: a.0 })
    }

    /// Elementwise scaling by constant `k`.
    pub fn scale(&mut self, a: Var, k: f32) -> Var {
        let _t = qdgnn_obs::op_timer("tensor.scale");
        let v = self.val(a).scaled(k);
        self.push(v, Op::Scale { a: a.0, k })
    }

    /// Elementwise addition of constant `k`.
    pub fn add_scalar(&mut self, a: Var, k: f32) -> Var {
        let _t = qdgnn_obs::op_timer("tensor.add_scalar");
        let v = self.val(a).map(|x| x + k);
        self.push(v, Op::AddScalar { a: a.0 })
    }

    /// Elementwise reciprocal square root (inputs must be positive).
    pub fn rsqrt(&mut self, a: Var) -> Var {
        let _t = qdgnn_obs::op_timer("tensor.rsqrt");
        let v = self.val(a).map(|x| 1.0 / x.sqrt());
        self.push(v, Op::Rsqrt { a: a.0 })
    }

    /// Horizontal concatenation (Feature Fusion's `AGG = Concatenation`).
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        let _t = qdgnn_obs::op_timer("tensor.concat_cols");
        let mats: Vec<&Dense> = parts.iter().map(|p| &*self.nodes[p.0].value).collect();
        let v = Dense::concat_cols(&mats);
        self.push(v, Op::ConcatCols { parts: parts.iter().map(|p| p.0).collect() })
    }

    /// Mean over all elements, as a 1×1 matrix.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let _t = qdgnn_obs::op_timer("tensor.mean_all");
        let v = Dense::from_vec(1, 1, vec![self.val(a).mean()]);
        self.push(v, Op::MeanAll { a: a.0 })
    }

    /// Mean binary cross-entropy between logits `a` and constant `target`
    /// (Eq. 3 of the paper), with optional per-element weights.
    pub fn bce_with_logits(
        &mut self,
        a: Var,
        target: Arc<Dense>,
        weights: Option<Arc<Dense>>,
    ) -> Var {
        let _t = qdgnn_obs::op_timer("tensor.bce_with_logits");
        let loss = ops::bce_with_logits_mean(self.val(a), &target, weights.as_deref());
        let v = Dense::from_vec(1, 1, vec![loss]);
        self.push(v, Op::BceWithLogitsMean { a: a.0, target, weights })
    }

    #[inline]
    fn val(&self, v: Var) -> &Dense {
        &self.nodes[v.index()].value
    }

    /// Runs the backward pass from scalar `loss` (must be 1×1) and returns
    /// per-variable gradients.
    ///
    /// # Panics
    /// Panics if `loss` is not a 1×1 value.
    pub fn backward(&self, loss: Var) -> Gradients {
        let _t = qdgnn_obs::op_timer("tensor.backward");
        if qdgnn_obs::enabled() {
            // Bytes of forward values this backward pass keeps alive —
            // the activation-memory cost of differentiating this graph.
            let retained: u64 = self.nodes.iter().map(|n| n.value.heap_bytes()).sum();
            qdgnn_obs::observe("tensor.tape_retained_bytes", retained as f64);
        }
        assert_eq!(self.shape(loss), (1, 1), "backward seed must be a scalar");
        let mut grads: Vec<Option<Dense>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.index()] = Some(Dense::from_vec(1, 1, vec![1.0]));

        for idx in (0..self.nodes.len()).rev() {
            let Some(g) = grads[idx].take() else { continue };
            let node = &self.nodes[idx];
            match &node.op {
                Op::Leaf => {
                    grads[idx] = Some(g); // keep for the caller
                    continue;
                }
                Op::Matmul { a, b } => {
                    let da = g.matmul_transpose(&self.nodes[*b].value);
                    let db = self.nodes[*a].value.transpose_matmul(&g);
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *b, db);
                }
                Op::Spmm { mt, b } => {
                    let db = mt.spmm(&g);
                    accumulate(&mut grads, *b, db);
                }
                Op::SpmmBlocked { mt, b, blocks } => {
                    // Each block routes through Mᵀ independently, so the
                    // backward pass is the same blocked product with `mt`.
                    let db = mt.spmm_blocked(&g, *blocks);
                    accumulate(&mut grads, *b, db);
                }
                Op::Add { a, b } => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, g);
                }
                Op::Sub { a, b } => {
                    accumulate(&mut grads, *b, g.scaled(-1.0));
                    accumulate(&mut grads, *a, g);
                }
                Op::Hadamard { a, b } => {
                    let da = g.hadamard(&self.nodes[*b].value);
                    let db = g.hadamard(&self.nodes[*a].value);
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *b, db);
                }
                Op::AddRow { a, r } => {
                    accumulate(&mut grads, *r, g.col_sums());
                    accumulate(&mut grads, *a, g);
                }
                Op::MulRow { a, r } => {
                    let rv = &self.nodes[*r].value;
                    let av = &self.nodes[*a].value;
                    let da = ops::mul_row_broadcast(&g, rv);
                    let dr = g.hadamard(av).col_sums();
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *r, dr);
                }
                Op::MulCol { a, c } => {
                    let cv = &self.nodes[*c].value;
                    let av = &self.nodes[*a].value;
                    let da = ops::mul_col_broadcast(&g, cv);
                    let dc = ops::row_sums(&g.hadamard(av));
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *c, dc);
                }
                Op::ColMean { a } => {
                    let rows = self.nodes[*a].value.rows();
                    let da = ops::broadcast_rows(&g, rows).scaled(1.0 / rows as f32);
                    accumulate(&mut grads, *a, da);
                }
                Op::Relu { a } => {
                    // node.value holds max(x,0); its positivity mask equals x>0
                    // except exactly at 0 where the subgradient 0 is used.
                    let mut da = g;
                    for (d, &y) in da.as_mut_slice().iter_mut().zip(node.value.as_slice()) {
                        if y <= 0.0 {
                            *d = 0.0;
                        }
                    }
                    accumulate(&mut grads, *a, da);
                }
                Op::Sigmoid { a } => {
                    let mut da = g;
                    for (d, &s) in da.as_mut_slice().iter_mut().zip(node.value.as_slice()) {
                        *d *= s * (1.0 - s);
                    }
                    accumulate(&mut grads, *a, da);
                }
                Op::Scale { a, k } => {
                    accumulate(&mut grads, *a, g.scaled(*k));
                }
                Op::AddScalar { a } => {
                    accumulate(&mut grads, *a, g);
                }
                Op::Rsqrt { a } => {
                    // y = x^(-1/2)  ⇒  dy/dx = −y³/2.
                    let mut da = g;
                    for (d, &y) in da.as_mut_slice().iter_mut().zip(node.value.as_slice()) {
                        *d *= -0.5 * y * y * y;
                    }
                    accumulate(&mut grads, *a, da);
                }
                Op::ConcatCols { parts } => {
                    let mut offset = 0;
                    for &p in parts {
                        let width = self.nodes[p].value.cols();
                        let dp = g.slice_cols(offset, width);
                        accumulate(&mut grads, p, dp);
                        offset += width;
                    }
                }
                Op::MeanAll { a } => {
                    let (r, c) = self.nodes[*a].value.shape();
                    let scale = g.get(0, 0) / (r * c) as f32;
                    accumulate(&mut grads, *a, Dense::full(r, c, scale));
                }
                Op::BceWithLogitsMean { a, target, weights } => {
                    // d/dx mean-BCE = (σ(x) − y) · w / N.
                    let logits = &self.nodes[*a].value;
                    let n = logits.len() as f32;
                    let scale = g.get(0, 0) / n;
                    let mut da = Dense::zeros(logits.rows(), logits.cols());
                    for i in 0..logits.len() {
                        let x = logits.as_slice()[i];
                        let y = target.as_slice()[i];
                        let w = weights.as_ref().map_or(1.0, |w| w.as_slice()[i]);
                        da.as_mut_slice()[i] = (ops::sigmoid(x) - y) * w * scale;
                    }
                    accumulate(&mut grads, *a, da);
                }
            }
        }
        Gradients { grads }
    }
}

fn accumulate(grads: &mut [Option<Dense>], idx: usize, delta: Dense) {
    match &mut grads[idx] {
        Some(g) => g.add_assign(&delta),
        slot => *slot = Some(delta),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_loss(t: &mut Tape, v: Var) -> Var {
        t.mean_all(v)
    }

    #[test]
    #[cfg(feature = "sanitize")]
    #[should_panic(expected = "op `rsqrt` produced non-finite value")]
    fn sanitize_names_the_offending_op() {
        let _lock = crate::sanitize::test_lock();
        let mut t = Tape::new();
        let x = t.leaf(Arc::new(Dense::from_rows(&[&[4.0, -1.0]])));
        let _ = t.rsqrt(x); // rsqrt(-1) = NaN → provenance panic
    }

    #[test]
    #[cfg(feature = "sanitize")]
    fn sanitize_scoped_off_lets_nonfinite_flow() {
        let _lock = crate::sanitize::test_lock();
        let _guard = crate::sanitize::scoped_off();
        let mut t = Tape::new();
        let x = t.leaf(Arc::new(Dense::from_rows(&[&[4.0, -1.0]])));
        let y = t.rsqrt(x);
        assert!(t.value(y).get(0, 1).is_nan());
    }

    #[test]
    fn matmul_gradients_match_analytic() {
        // loss = mean(A·B); dA = ones·Bᵀ / N, dB = Aᵀ·ones / N.
        let mut t = Tape::new();
        let a = t.leaf(Arc::new(Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])));
        let b = t.leaf(Arc::new(Dense::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]])));
        let c = t.matmul(a, b);
        let loss = scalar_loss(&mut t, c);
        let g = t.backward(loss);
        let ones = Dense::full(2, 2, 0.25);
        let da = ones.matmul_transpose(t.value(b));
        let db = t.value(a).transpose_matmul(&ones);
        assert!(g.get(a).unwrap().approx_eq(&da, 1e-6));
        assert!(g.get(b).unwrap().approx_eq(&db, 1e-6));
    }

    #[test]
    fn relu_kills_negative_gradient() {
        let mut t = Tape::new();
        let x = t.leaf(Arc::new(Dense::row_vector(&[-1.0, 2.0])));
        let y = t.relu(x);
        let loss = scalar_loss(&mut t, y);
        let g = t.backward(loss);
        assert!(g.get(x).unwrap().approx_eq(&Dense::row_vector(&[0.0, 0.5]), 1e-6));
    }

    #[test]
    fn unused_leaf_has_no_gradient() {
        let mut t = Tape::new();
        let x = t.leaf(Arc::new(Dense::row_vector(&[1.0])));
        let y = t.leaf(Arc::new(Dense::row_vector(&[2.0])));
        let loss = scalar_loss(&mut t, x);
        let g = t.backward(loss);
        assert!(g.get(y).is_none());
        assert!(g.get(x).is_some());
    }

    #[test]
    fn spmm_gradient_routes_through_transpose() {
        let m = Arc::new(Csr::from_triplets(2, 3, &[(0, 0, 2.0), (1, 2, -1.0)]));
        let mt = Arc::new(m.transpose());
        let mut t = Tape::new();
        let b = t.leaf(Arc::new(Dense::from_rows(&[&[1.0], &[2.0], &[3.0]])));
        let y = t.spmm(&m, &mt, b);
        let loss = t.mean_all(y);
        let g = t.backward(loss);
        // dB = Mᵀ · (1/2 each)
        let expect = mt.spmm(&Dense::full(2, 1, 0.5));
        assert!(g.get(b).unwrap().approx_eq(&expect, 1e-6));
    }

    #[test]
    fn concat_splits_gradient() {
        let mut t = Tape::new();
        let a = t.leaf(Arc::new(Dense::from_rows(&[&[1.0, 2.0]])));
        let b = t.leaf(Arc::new(Dense::from_rows(&[&[3.0]])));
        let c = t.concat_cols(&[a, b]);
        let loss = t.mean_all(c);
        let g = t.backward(loss);
        assert_eq!(g.get(a).unwrap().shape(), (1, 2));
        assert_eq!(g.get(b).unwrap().shape(), (1, 1));
        let third = 1.0 / 3.0;
        assert!(g.get(a).unwrap().approx_eq(&Dense::row_vector(&[third, third]), 1e-6));
    }

    #[test]
    fn bce_gradient_is_sigmoid_minus_target() {
        let mut t = Tape::new();
        let x = t.leaf(Arc::new(Dense::row_vector(&[0.0, 3.0])));
        let target = Arc::new(Dense::row_vector(&[1.0, 0.0]));
        let loss = t.bce_with_logits(x, Arc::clone(&target), None);
        let g = t.backward(loss);
        let expect =
            Dense::row_vector(&[(ops::sigmoid(0.0) - 1.0) / 2.0, ops::sigmoid(3.0) / 2.0]);
        assert!(g.get(x).unwrap().approx_eq(&expect, 1e-6));
    }

    #[test]
    fn reused_variable_accumulates_gradient() {
        // loss = mean(x + x) ⇒ dx = 2/N.
        let mut t = Tape::new();
        let x = t.leaf(Arc::new(Dense::row_vector(&[1.0, 2.0])));
        let y = t.add(x, x);
        let loss = t.mean_all(y);
        let g = t.backward(loss);
        assert!(g.get(x).unwrap().approx_eq(&Dense::row_vector(&[1.0, 1.0]), 1e-6));
    }
}
