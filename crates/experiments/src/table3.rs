//! Table 3: interactive community search — F1 (%) and seconds per
//! interaction for ICS-GNN (per-query re-trained Vanilla GCN) versus the
//! same pipeline with pre-trained QD-GNN and AQD-GNN (AFN and AFC).

use qdgnn_baselines::{IcsGnn, IcsGnnConfig};
use qdgnn_core::interactive::{run_interactive, InteractiveConfig, ModelScorer, SubgraphScorer};
use qdgnn_data::{AttrMode, Query};

use crate::harness::{self, DatasetContext};
use crate::profile::{Profile, RunConfig};
use crate::table::ResultTable;

/// Method rows of the table.
pub const METHODS: [&str; 4] = ["ICS-GNN", "QD-GNN", "AQD (AFN)", "AQD (AFC)"];

fn interactive_config() -> InteractiveConfig {
    InteractiveConfig::default()
}

fn avg_outcomes(
    graph: &qdgnn_graph::AttributedGraph,
    scorer: &dyn SubgraphScorer,
    queries: &[Query],
    seed: u64,
) -> (f64, f64) {
    let cfg = interactive_config();
    let mut f1 = 0.0;
    let mut secs = 0.0;
    for (i, q) in queries.iter().enumerate() {
        let outcome = run_interactive(graph, scorer, q, &cfg, seed ^ i as u64);
        f1 += outcome.final_f1();
        secs += outcome.avg_seconds();
    }
    let n = queries.len().max(1) as f64;
    (100.0 * f1 / n, secs / n)
}

/// Runs the experiment; rows are methods, per-dataset F1/Time column
/// pairs plus trailing averages.
pub fn run(run: &RunConfig) -> ResultTable {
    let datasets = run.datasets();
    // Interactive sessions re-train (ICS-GNN) per query per round; cap the
    // evaluated query count so the fast/std profiles stay interactive.
    let eval_queries = match run.profile {
        Profile::Fast => 8,
        Profile::Std => 15,
        Profile::Paper => 100,
    };

    let mut columns: Vec<String> = vec!["Method".into()];
    for d in &datasets {
        columns.push(format!("{} F1%", d.name));
        columns.push(format!("{} Time(s)", d.name));
    }
    columns.push("Avg F1%".into());
    columns.push("Avg Time(s)".into());
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table =
        ResultTable::new("Table 3 — Interactive community search", &col_refs);

    let mut cells: Vec<Vec<f64>> = vec![Vec::new(); METHODS.len()];

    for dataset in datasets {
        eprintln!("[table3] {}", dataset.stats_line());
        let ctx = DatasetContext::prepare(dataset, run);
        let ema = ctx.split_multi(AttrMode::Empty, run);
        let afn = ctx.split_multi(AttrMode::FromNode, run);
        let afc = ctx.split_multi(AttrMode::FromCommunity, run);
        let test_n = eval_queries.min(ema.test.len());

        // ICS-GNN: per-query training inside the loop, scaled-down GCN in
        // non-paper profiles to keep wall-clock sane.
        let ics_cfg = match run.profile {
            Profile::Paper => IcsGnnConfig::default(),
            _ => IcsGnnConfig { hidden: 32, epochs: 40, ..Default::default() },
        };
        let ics = IcsGnn::new(ics_cfg);
        let (f1, t) = avg_outcomes(&ctx.dataset.graph, &ics, &ema.test[..test_n], run.seed);
        cells[0].push(f1);
        cells[0].push(t);

        // Pre-trained QD-GNN in the same loop.
        let qd = harness::train_qd(&ctx, run, &ema);
        let scorer = ModelScorer { model: &qd.model };
        let (f1, t) = avg_outcomes(&ctx.dataset.graph, &scorer, &ema.test[..test_n], run.seed);
        cells[1].push(f1);
        cells[1].push(t);

        // Pre-trained AQD-GNN under AFN and AFC.
        let aqd_afn = harness::train_aqd(&ctx, run, &afn);
        let scorer = ModelScorer { model: &aqd_afn.model };
        let (f1, t) = avg_outcomes(&ctx.dataset.graph, &scorer, &afn.test[..test_n], run.seed);
        cells[2].push(f1);
        cells[2].push(t);

        let aqd_afc = harness::train_aqd(&ctx, run, &afc);
        let scorer = ModelScorer { model: &aqd_afc.model };
        let (f1, t) = avg_outcomes(&ctx.dataset.graph, &scorer, &afc.test[..test_n], run.seed);
        cells[3].push(f1);
        cells[3].push(t);
    }

    for (method, row) in METHODS.iter().zip(&cells) {
        // Averages over the F1 (even) and time (odd) positions.
        let f1s: Vec<f64> = row.iter().copied().step_by(2).collect();
        let ts: Vec<f64> = row.iter().copied().skip(1).step_by(2).collect();
        let mut values = row.clone();
        values.push(f1s.iter().sum::<f64>() / f1s.len().max(1) as f64);
        values.push(ts.iter().sum::<f64>() / ts.len().max(1) as f64);
        table.push_values(method, &values, 2);
    }
    table
}
