#![warn(missing_docs)]

//! # qdgnn-experiments
//!
//! The harness reproducing every table and figure of the paper's
//! evaluation (§7). Each experiment has a runner function here and a
//! thin binary under `src/bin/`; DESIGN.md §3 maps paper artifacts to
//! binaries. All runners accept a [`profile::RunConfig`] (CLI:
//! `--profile fast|std|paper`, `--seed N`, `--out DIR`,
//! `--datasets a,b,c`) and write both an aligned text table to stdout
//! and a CSV to the output directory.

pub mod ablation;
pub mod extras;
pub mod fig6;
pub mod fig7;
pub mod harness;
pub mod profile;
pub mod table;
pub mod table2;
pub mod table3;
pub mod table4;

pub use profile::{Profile, RunConfig};
pub use table::ResultTable;
