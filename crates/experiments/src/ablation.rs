//! Ablation studies of §7.5: Feature Fusion (Fig. 8a), threshold γ
//! (Fig. 8b), data-split ratio (Fig. 9), epoch count and dropout rate
//! (Fig. 10).

use qdgnn_core::config::ModelConfig;
use qdgnn_core::models::{AqdGnn, QdGnn};
use qdgnn_core::train::Trainer;
use qdgnn_data::queries::{generate_bases, materialize};
use qdgnn_data::{AttrMode, Dataset, QuerySplit};

use crate::harness::{self, DatasetContext};
use crate::profile::{Profile, RunConfig};
use crate::table::ResultTable;

/// The γ grid of Figure 8b.
pub fn gamma_grid() -> Vec<f32> {
    (1..=19).map(|i| i as f32 * 0.05).collect()
}

/// Datasets used for the parameter sweeps (the paper uses four; the
/// non-paper profiles take the first of their own sets).
fn sweep_datasets(run: &RunConfig) -> Vec<Dataset> {
    let mut sets = run.datasets();
    sets.truncate(4);
    sets
}

/// Figure 8a: F1 with and without Feature Fusion, for QD-GNN (EmA) and
/// AQD-GNN (AFC).
pub fn fig8a(run: &RunConfig) -> ResultTable {
    let datasets = run.datasets();
    let mut columns: Vec<&str> = vec!["Method"];
    let names: Vec<String> = datasets.iter().map(|d| d.name.clone()).collect();
    columns.extend(names.iter().map(String::as_str));
    let mut table = ResultTable::new("Figure 8a — Feature Fusion ablation (F1)", &columns);

    const ROWS: [&str; 4] = ["QD-GNN", "QD-GNN-noFu", "AQD-GNN", "AQD-GNN-noFu"];
    let mut scores: Vec<Vec<f64>> = vec![Vec::new(); ROWS.len()];

    for dataset in datasets {
        eprintln!("[fig8a] {}", dataset.stats_line());
        let ctx = DatasetContext::prepare(dataset, run);
        let ema = ctx.split_multi(AttrMode::Empty, run);
        let afc = ctx.split_multi(AttrMode::FromCommunity, run);
        let trainer = Trainer::new(run.profile.train_config(run.seed));
        let mc = run.profile.model_config(run.seed);
        let nofu = ModelConfig { feature_fusion: false, ..mc.clone() };

        let qd = trainer.train(QdGnn::new(mc.clone(), ctx.tensors.d), &ctx.tensors, &ema.train, &ema.val);
        scores[0].push(harness::model_test_f1(&qd.model, &ctx.tensors, &ema.test, qd.gamma));
        let qd_nofu =
            trainer.train(QdGnn::new(nofu.clone(), ctx.tensors.d), &ctx.tensors, &ema.train, &ema.val);
        scores[1].push(harness::model_test_f1(
            &qd_nofu.model,
            &ctx.tensors,
            &ema.test,
            qd_nofu.gamma,
        ));
        let aqd =
            trainer.train(AqdGnn::new(mc, ctx.tensors.d), &ctx.tensors, &afc.train, &afc.val);
        scores[2].push(harness::model_test_f1(&aqd.model, &ctx.tensors, &afc.test, aqd.gamma));
        let aqd_nofu =
            trainer.train(AqdGnn::new(nofu, ctx.tensors.d), &ctx.tensors, &afc.train, &afc.val);
        scores[3].push(harness::model_test_f1(
            &aqd_nofu.model,
            &ctx.tensors,
            &afc.test,
            aqd_nofu.gamma,
        ));
    }
    for (method, row) in ROWS.iter().zip(&scores) {
        table.push_values(method, row, 3);
    }
    table
}

/// Figure 8b: test F1 of a trained AQD-GNN (AFC) as γ varies 0.05–0.95.
pub fn fig8b(run: &RunConfig) -> ResultTable {
    let grid = gamma_grid();
    let mut columns: Vec<String> = vec!["Dataset".into()];
    columns.extend(grid.iter().map(|g| format!("{g:.2}")));
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = ResultTable::new("Figure 8b — Threshold γ sensitivity (F1)", &col_refs);

    for dataset in sweep_datasets(run) {
        eprintln!("[fig8b] {}", dataset.stats_line());
        let name = dataset.name.clone();
        let ctx = DatasetContext::prepare(dataset, run);
        let afc = ctx.split_multi(AttrMode::FromCommunity, run);
        let aqd = harness::train_aqd(&ctx, run, &afc);
        let values: Vec<f64> = grid
            .iter()
            .map(|&g| harness::model_test_f1(&aqd.model, &ctx.tensors, &afc.test, g))
            .collect();
        table.push_values(&name, &values, 3);
    }
    table
}

/// The training-set sizes of Figure 9a, scaled by profile.
pub fn train_size_grid(profile: Profile) -> Vec<usize> {
    match profile {
        Profile::Fast => vec![15, 30, 45, 60],
        Profile::Std => vec![20, 50, 90],
        Profile::Paper => vec![50, 100, 150, 200, 250, 300, 350],
    }
}

/// The validation-set sizes of Figure 9b, scaled by profile.
pub fn val_size_grid(profile: Profile) -> Vec<usize> {
    match profile {
        Profile::Fast => vec![10, 20, 30],
        Profile::Std => vec![20, 40, 60],
        Profile::Paper => vec![50, 100, 150, 200],
    }
}

/// Figure 9: F1 as the training-set (9a) or validation-set (9b) size
/// varies. `vary_train` selects the panel.
pub fn fig9(run: &RunConfig, vary_train: bool) -> ResultTable {
    let (_, base_train, base_val, n_test) = run.profile.query_counts();
    let grid =
        if vary_train { train_size_grid(run.profile) } else { val_size_grid(run.profile) };
    let max_needed = if vary_train {
        grid.iter().max().unwrap() + base_val + n_test
    } else {
        base_train + grid.iter().max().unwrap() + n_test
    };

    let title = if vary_train {
        "Figure 9a — Training-set size sweep (F1)"
    } else {
        "Figure 9b — Validation-set size sweep (F1)"
    };
    let mut columns: Vec<String> = vec!["Dataset".into()];
    columns.extend(grid.iter().map(|s| s.to_string()));
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = ResultTable::new(title, &col_refs);

    for dataset in sweep_datasets(run) {
        eprintln!("[fig9] {}", dataset.stats_line());
        let name = dataset.name.clone();
        let mc = run.profile.model_config(run.seed);
        let tensors = qdgnn_core::GraphTensors::new(
            &dataset.graph,
            mc.adj_norm,
            mc.fusion_graph_attr_cap,
        );
        let bases = generate_bases(&dataset, max_needed, 1, 3, run.seed);
        let queries = materialize(&dataset, &bases, AttrMode::FromCommunity);
        let mut values = Vec::with_capacity(grid.len());
        for &size in &grid {
            let (n_train, n_val) =
                if vary_train { (size, base_val) } else { (base_train, size) };
            let split = QuerySplit::new(queries.clone(), n_train, n_val, n_test);
            let trainer = Trainer::new(run.profile.train_config(run.seed));
            let trained = trainer.train(
                AqdGnn::new(mc.clone(), tensors.d),
                &tensors,
                &split.train,
                &split.val,
            );
            values.push(harness::model_test_f1(
                &trained.model,
                &tensors,
                &split.test,
                trained.gamma,
            ));
        }
        table.push_values(&name, &values, 3);
    }
    table
}

/// Figure 10a: validation F1 along the training trajectory (the paper's
/// epoch-number sweep, read off one long run's validation history).
pub fn fig10a(run: &RunConfig) -> ResultTable {
    let epochs = match run.profile {
        Profile::Fast => 60,
        Profile::Std => 120,
        Profile::Paper => 1000,
    };
    let every = (epochs / 12).max(1);

    let mut table_cols: Vec<String> = vec!["Dataset".into()];
    let checkpoints: Vec<usize> = (1..=epochs).filter(|e| e % every == 0).collect();
    table_cols.extend(checkpoints.iter().map(|e| e.to_string()));
    let col_refs: Vec<&str> = table_cols.iter().map(String::as_str).collect();
    let mut table = ResultTable::new("Figure 10a — Epoch sweep (validation F1)", &col_refs);

    for dataset in sweep_datasets(run) {
        eprintln!("[fig10a] {}", dataset.stats_line());
        let name = dataset.name.clone();
        let ctx = DatasetContext::prepare(dataset, run);
        let afc = ctx.split_multi(AttrMode::FromCommunity, run);
        let mut tc = run.profile.train_config(run.seed);
        tc.epochs = epochs;
        tc.validate_every = every;
        let trained = Trainer::new(tc).train(
            AqdGnn::new(run.profile.model_config(run.seed), ctx.tensors.d),
            &ctx.tensors,
            &afc.train,
            &afc.val,
        );
        let mut values = Vec::with_capacity(checkpoints.len());
        for &e in &checkpoints {
            let f1 = trained
                .report
                .val_history
                .iter()
                .filter(|(ep, _)| *ep <= e)
                .map(|(_, f1)| *f1)
                .next_back()
                .unwrap_or(0.0);
            values.push(f1);
        }
        table.push_values(&name, &values, 3);
    }
    table
}

/// The dropout grid of Figure 10b.
pub fn dropout_grid() -> Vec<f32> {
    vec![0.1, 0.3, 0.5, 0.7, 0.9]
}

/// Figure 10b: test F1 as the dropout rate varies.
pub fn fig10b(run: &RunConfig) -> ResultTable {
    let grid = dropout_grid();
    let mut columns: Vec<String> = vec!["Dataset".into()];
    columns.extend(grid.iter().map(|p| format!("{p:.1}")));
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = ResultTable::new("Figure 10b — Dropout-rate sweep (F1)", &col_refs);

    for dataset in sweep_datasets(run) {
        eprintln!("[fig10b] {}", dataset.stats_line());
        let name = dataset.name.clone();
        let ctx = DatasetContext::prepare(dataset, run);
        let afc = ctx.split_multi(AttrMode::FromCommunity, run);
        let mut values = Vec::with_capacity(grid.len());
        for &p in &grid {
            let mc = ModelConfig { dropout: p, ..run.profile.model_config(run.seed) };
            let trained = Trainer::new(run.profile.train_config(run.seed)).train(
                AqdGnn::new(mc, ctx.tensors.d),
                &ctx.tensors,
                &afc.train,
                &afc.val,
            );
            values.push(harness::model_test_f1(
                &trained.model,
                &ctx.tensors,
                &afc.test,
                trained.gamma,
            ));
        }
        table.push_values(&name, &values, 3);
    }
    table
}
