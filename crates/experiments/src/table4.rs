//! Table 4: ACS on large graphs — Reddit and Enlarged_Reddit.
//!
//! Compares ACQ, ATC and AQD-GNN (with the §7.4 subgraph-training
//! mechanism) on index/train time, average query time and F1. The Reddit
//! replica is scaled down (DESIGN.md §1); at the paper's scale ATC's
//! index did not finish in 7 days — at ours it completes, so its actual
//! numbers are reported and the scale difference is noted in
//! EXPERIMENTS.md.

use std::time::Instant;

use qdgnn_baselines::{Acq, Atc, CommunityMethod};
use qdgnn_core::models::AqdGnn;
use qdgnn_core::subgraph::{
    evaluate_subgraph, predict_community_subgraph, SubgraphConfig, SubgraphTrainer,
};
use qdgnn_core::train::TrainConfig;
use qdgnn_data::queries::{generate_bases, materialize};
use qdgnn_data::{enlarge_within_communities, AttrMode, Dataset, GeneratorConfig, QuerySplit};
use qdgnn_graph::core_decomp;

use crate::harness::{self};
use crate::profile::{Profile, RunConfig};
use crate::table::ResultTable;

/// The Reddit replica at a profile-appropriate scale.
pub fn reddit_for(profile: Profile) -> Dataset {
    let (communities, size) = match profile {
        Profile::Fast => (12, 120.0),
        Profile::Std => (25, 280.0),
        Profile::Paper => (50, 4659.3 / qdgnn_data::presets::REDDIT_SCALE as f64),
    };
    GeneratorConfig {
        num_communities: communities,
        community_size_mean: size,
        community_size_jitter: 0.4,
        intra_degree: 8.0,
        inter_degree: 4.0,
        vocab_size: 602,
        topics_per_community: 60,
        topic_overlap: 0.25,
        attrs_per_vertex_mean: 30.0,
        topic_affinity: 0.85,
        seed: 0x4EDD17,
        ..Default::default()
    }
    .generate("Reddit")
}

/// Runs the experiment; rows are methods, columns are
/// `(Index/Train s, Query ms, F1)` per dataset.
pub fn run(run: &RunConfig) -> ResultTable {
    let reddit = reddit_for(run.profile);
    let enlarged = enlarge_within_communities(&reddit, 0.5, run.seed);
    let datasets = vec![reddit, enlarged];

    let mut columns: Vec<String> = vec!["Method".into()];
    for d in &datasets {
        columns.push(format!("{} Index/Train(s)", d.name));
        columns.push(format!("{} Query(ms)", d.name));
        columns.push(format!("{} F1", d.name));
    }
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = ResultTable::new("Table 4 — ACS on large graphs", &col_refs);

    let mut rows: Vec<(String, Vec<f64>)> = vec![
        ("ACQ".into(), Vec::new()),
        ("ATC".into(), Vec::new()),
        ("AQD-GNN".into(), Vec::new()),
    ];

    let (_, n_train, n_val, n_test) = run.profile.query_counts();
    let (n_train, n_val, n_test) = match run.profile {
        Profile::Fast => (20, 10, 10),
        Profile::Std => (40, 20, 20),
        Profile::Paper => (n_train, n_val, n_test),
    };

    for dataset in &datasets {
        eprintln!("[table4] {}", dataset.stats_line());
        let bases = generate_bases(dataset, n_train + n_val + n_test, 1, 1, run.seed);
        let queries = materialize(dataset, &bases, AttrMode::FromCommunity);
        let split = QuerySplit::new(queries, n_train, n_val, n_test);

        // ACQ: "index" = core decomposition; queries run on the full graph.
        let t0 = Instant::now();
        let _core = core_decomp::core_numbers(dataset.graph.graph());
        let acq_index_s = t0.elapsed().as_secs_f64();
        let acq = Acq::new();
        let (acq_ms, acq_pred) =
            harness::time_queries(&split.test, |q| acq.search(&dataset.graph, q));
        rows[0].1.extend([acq_index_s, acq_ms, harness::micro_f1(&acq_pred, &split.test)]);

        // ATC: index = truss decomposition.
        let t0 = Instant::now();
        let atc = Atc::index(dataset.graph.graph());
        let atc_index_s = t0.elapsed().as_secs_f64();
        let (atc_ms, atc_pred) =
            harness::time_queries(&split.test, |q| atc.search(&dataset.graph, q));
        rows[1].1.extend([atc_index_s, atc_ms, harness::micro_f1(&atc_pred, &split.test)]);

        // AQD-GNN with subgraph training (§7.4): train time includes the
        // fusion-graph construction it depends on.
        let mc = run.profile.model_config(run.seed);
        let t0 = Instant::now();
        let fusion = dataset.graph.fusion_graph(mc.fusion_graph_attr_cap);
        let sub_cfg = SubgraphConfig::default();
        let trainer = SubgraphTrainer::new(
            TrainConfig { ..run.profile.train_config(run.seed) },
            sub_cfg.clone(),
        );
        let model = AqdGnn::new(mc, dataset.graph.num_attrs());
        let trained = trainer.train(model, &dataset.graph, &fusion, &split.train, &split.val);
        let train_s = t0.elapsed().as_secs_f64();
        let (aqd_ms, _) = harness::time_queries(&split.test, |q| {
            predict_community_subgraph(
                &trained.model,
                &dataset.graph,
                &fusion,
                q,
                trained.gamma,
                &sub_cfg,
            )
        });
        let f1 = evaluate_subgraph(
            &trained.model,
            &dataset.graph,
            &fusion,
            &split.test,
            trained.gamma,
            &sub_cfg,
        )
        .f1;
        rows[2].1.extend([train_s, aqd_ms, f1]);
    }

    for (label, values) in rows {
        let mut cells = vec![label];
        for (i, v) in values.iter().enumerate() {
            // Columns cycle (seconds, ms, f1): precision 1, 2, 3.
            let prec = [1usize, 2, 3][i % 3];
            cells.push(format!("{v:.prec$}"));
        }
        table.push_row(cells);
    }
    table
}
