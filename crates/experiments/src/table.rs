//! Result tables: aligned text rendering (what the binaries print) and a
//! tiny CSV writer (what EXPERIMENTS.md and downstream plotting consume).

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// A rectangular result table with a leading label column.
#[derive(Clone, Debug)]
pub struct ResultTable {
    /// Table title (printed above the header).
    pub title: String,
    /// Header: label-column name followed by the value columns.
    pub columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        ResultTable {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; cell count must match the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a row of `(label, f64 values)` with the given precision.
    pub fn push_values(&mut self, label: &str, values: &[f64], precision: usize) {
        let mut cells = Vec::with_capacity(values.len() + 1);
        cells.push(label.to_string());
        cells.extend(values.iter().map(|v| format!("{v:.precision$}")));
        self.push_row(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor (row-major, excluding the header).
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Writes the table as CSV.
    pub fn save_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        let mut out = String::new();
        out.push_str(&csv_line(&self.columns));
        for row in &self.rows {
            out.push_str(&csv_line(row));
        }
        fs::write(path, out)
    }
}

fn csv_line(cells: &[String]) -> String {
    let escaped: Vec<String> = cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect();
    format!("{}\n", escaped.join(","))
}

impl fmt::Display for ResultTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        writeln!(f, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()))?;
        for row in &self.rows {
            let cells: Vec<String> =
                row.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
            writeln!(f, "{}", cells.join("  "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = ResultTable::new("Demo", &["Method", "F1"]);
        t.push_values("QD-GNN", &[0.91234], 3);
        t.push_values("CTC", &[0.5], 3);
        let s = t.to_string();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("0.912"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(1, 0), "CTC");
    }

    #[test]
    fn csv_round_trip_with_escaping() {
        let mut t = ResultTable::new("X", &["a", "b"]);
        t.push_row(vec!["hello, world".into(), "plain".into()]);
        let dir = std::env::temp_dir().join("qdgnn_table_test");
        let path = dir.join("t.csv");
        t.save_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n\"hello, world\",plain\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_rejected() {
        let mut t = ResultTable::new("X", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }
}
