//! Shared experiment plumbing: dataset preparation, model training
//! wrappers, query timing.

use qdgnn_core::models::{AqdGnn, QdGnn, SimpleQdGnn};
use qdgnn_core::train::{predict_communities, TrainedModel, Trainer};
use qdgnn_core::{CsModel, GraphTensors};
use qdgnn_data::queries::{generate_bases, materialize, QueryBase};
use qdgnn_data::{AttrMode, Dataset, Query, QuerySplit};
use qdgnn_graph::{CommunityMetrics, VertexId};

use crate::profile::RunConfig;

/// A dataset with its tensors and reusable query skeletons (§7.1.3:
/// vertex sets are shared across the EmA/AFC/AFN regimes).
pub struct DatasetContext {
    /// The dataset.
    pub dataset: Dataset,
    /// Query-independent tensors.
    pub tensors: GraphTensors,
    /// Multi-vertex (1–3) query skeletons.
    pub bases_multi: Vec<QueryBase>,
    /// Single-vertex query skeletons (for the ACQ comparison, §7.2.2).
    pub bases_single: Vec<QueryBase>,
}

impl DatasetContext {
    /// Generates tensors and query skeletons for `dataset`.
    pub fn prepare(dataset: Dataset, run: &RunConfig) -> Self {
        let mc = run.profile.model_config(run.seed);
        let tensors = GraphTensors::new(&dataset.graph, mc.adj_norm, mc.fusion_graph_attr_cap);
        let (total, ..) = run.profile.query_counts();
        let bases_multi = generate_bases(&dataset, total, 1, 3, run.seed);
        let bases_single = generate_bases(&dataset, total, 1, 1, run.seed ^ 0x51);
        DatasetContext { dataset, tensors, bases_multi, bases_single }
    }

    /// Materializes + splits the multi-vertex skeletons under `mode`.
    pub fn split_multi(&self, mode: AttrMode, run: &RunConfig) -> QuerySplit {
        let (_, train, val, test) = run.profile.query_counts();
        QuerySplit::new(materialize(&self.dataset, &self.bases_multi, mode), train, val, test)
    }

    /// Materializes + splits the single-vertex skeletons under `mode`.
    pub fn split_single(&self, mode: AttrMode, run: &RunConfig) -> QuerySplit {
        let (_, train, val, test) = run.profile.query_counts();
        QuerySplit::new(materialize(&self.dataset, &self.bases_single, mode), train, val, test)
    }
}

/// Trains a Simple QD-GNN on the split.
pub fn train_simple(ctx: &DatasetContext, run: &RunConfig, split: &QuerySplit) -> TrainedModel<SimpleQdGnn> {
    let model = SimpleQdGnn::new(run.profile.model_config(run.seed));
    Trainer::new(run.profile.train_config(run.seed)).train(
        model,
        &ctx.tensors,
        &split.train,
        &split.val,
    )
}

/// Trains a QD-GNN on the split.
pub fn train_qd(ctx: &DatasetContext, run: &RunConfig, split: &QuerySplit) -> TrainedModel<QdGnn> {
    let model = QdGnn::new(run.profile.model_config(run.seed), ctx.tensors.d);
    Trainer::new(run.profile.train_config(run.seed)).train(
        model,
        &ctx.tensors,
        &split.train,
        &split.val,
    )
}

/// Trains an AQD-GNN on the split.
pub fn train_aqd(ctx: &DatasetContext, run: &RunConfig, split: &QuerySplit) -> TrainedModel<AqdGnn> {
    let model = AqdGnn::new(run.profile.model_config(run.seed), ctx.tensors.d);
    Trainer::new(run.profile.train_config(run.seed)).train(
        model,
        &ctx.tensors,
        &split.train,
        &split.val,
    )
}

/// Test-set micro-F1 of a trained model through the full online pipeline.
pub fn model_test_f1(
    model: &dyn CsModel,
    tensors: &GraphTensors,
    test: &[Query],
    gamma: f32,
) -> f64 {
    let predicted = predict_communities(model, tensors, test, gamma);
    micro_f1(&predicted, test)
}

/// Micro-F1 of arbitrary predictions against the queries' ground truth.
pub fn micro_f1(predicted: &[Vec<VertexId>], queries: &[Query]) -> f64 {
    let truth: Vec<Vec<VertexId>> = queries.iter().map(|q| q.truth.clone()).collect();
    CommunityMetrics::micro(predicted, &truth).f1
}

/// Runs `f` once per query, returning `(avg_milliseconds, predictions)`.
pub fn time_queries(
    queries: &[Query],
    mut f: impl FnMut(&Query) -> Vec<VertexId>,
) -> (f64, Vec<Vec<VertexId>>) {
    let mut predictions = Vec::with_capacity(queries.len());
    // Injectable obs wall clock, not Instant (QD007): fake-clock tests
    // can pin these timings.
    let start_us = qdgnn_obs::clock::wall_micros();
    for q in queries {
        predictions.push(f(q));
    }
    let total_ms =
        qdgnn_obs::clock::wall_micros().saturating_sub(start_us) as f64 / 1e3;
    (total_ms / queries.len().max(1) as f64, predictions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;

    fn fast_run() -> RunConfig {
        RunConfig { profile: Profile::Fast, ..Default::default() }
    }

    #[test]
    fn context_preparation_shares_vertex_sets() {
        let run = fast_run();
        let ctx = DatasetContext::prepare(qdgnn_data::presets::toy(), &run);
        let ema = ctx.split_multi(AttrMode::Empty, &run);
        let afc = ctx.split_multi(AttrMode::FromCommunity, &run);
        assert_eq!(ema.test[0].vertices, afc.test[0].vertices);
        assert!(afc.test[0].attrs.len() <= 5 && !afc.test[0].attrs.is_empty());
        let single = ctx.split_single(AttrMode::FromNode, &run);
        assert!(single.test.iter().all(|q| q.vertices.len() == 1));
    }

    #[test]
    fn time_queries_counts_all() {
        let queries: Vec<Query> = (0..3)
            .map(|i| Query { vertices: vec![i], attrs: vec![], truth: vec![i] })
            .collect();
        let (avg_ms, preds) = time_queries(&queries, |q| q.vertices.clone());
        assert_eq!(preds.len(), 3);
        assert!(avg_ms >= 0.0);
        assert!((micro_f1(&preds, &queries) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_queries_on_fake_clock_is_exact() {
        use qdgnn_obs::clock::{self, FakeClock, MonotonicClock};
        use std::sync::Arc;

        let fake = Arc::new(FakeClock::new());
        clock::set_wall(fake.clone());
        let queries: Vec<Query> = (0..4)
            .map(|i| Query { vertices: vec![i], attrs: vec![], truth: vec![i] })
            .collect();
        let (avg_ms, preds) = time_queries(&queries, |q| {
            fake.advance_micros(2_000);
            q.vertices.clone()
        });
        // `reset()` is a no-op without the `enabled` feature, so restore
        // the monotonic wall clock by hand.
        clock::set_wall(Arc::new(MonotonicClock::new()));
        assert_eq!(preds.len(), 4);
        assert!((avg_ms - 2.0).abs() < 1e-12, "avg {avg_ms}ms on the fake clock");
    }
}
