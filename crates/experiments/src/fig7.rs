//! Figure 7: attributed community search under the AFC and AFN
//! query-attribute regimes.
//!
//! * 7a — one-vertex queries: ACQ vs AQD-GNN;
//! * 7b — multi-vertex queries: ATC vs AQD-GNN.

use qdgnn_baselines::{Acq, Atc, CommunityMethod};
use qdgnn_data::AttrMode;

use crate::harness::{self, DatasetContext};
use crate::profile::RunConfig;
use crate::table::ResultTable;

/// Which panel of Figure 7 to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Panel {
    /// 7a: single-vertex queries, ACQ baseline.
    OneVertex,
    /// 7b: multi-vertex queries, ATC baseline.
    MultiVertex,
}

/// Runs one panel; rows are `{baseline, AQD-GNN} × {AFC, AFN}`.
pub fn run(run: &RunConfig, panel: Panel) -> ResultTable {
    let datasets = run.datasets();
    let (title, baseline_name) = match panel {
        Panel::OneVertex => ("Figure 7a — ACS, one-vertex queries (F1)", "ACQ"),
        Panel::MultiVertex => ("Figure 7b — ACS, multi-vertex queries (F1)", "ATC"),
    };
    let mut columns: Vec<&str> = vec!["Method"];
    let names: Vec<String> = datasets.iter().map(|d| d.name.clone()).collect();
    columns.extend(names.iter().map(String::as_str));
    let mut table = ResultTable::new(title, &columns);

    let row_labels = [
        format!("{baseline_name} (AFC)"),
        "AQD-GNN (AFC)".to_string(),
        format!("{baseline_name} (AFN)"),
        "AQD-GNN (AFN)".to_string(),
    ];
    let mut scores: Vec<Vec<f64>> = vec![Vec::new(); 4];

    for dataset in datasets {
        eprintln!("[fig7] {}", dataset.stats_line());
        let ctx = DatasetContext::prepare(dataset, run);
        for (slot, mode) in [(0usize, AttrMode::FromCommunity), (2usize, AttrMode::FromNode)] {
            let split = match panel {
                Panel::OneVertex => ctx.split_single(mode, run),
                Panel::MultiVertex => ctx.split_multi(mode, run),
            };
            // Baseline.
            let baseline_pred = match panel {
                Panel::OneVertex => {
                    let acq = Acq::new();
                    harness::time_queries(&split.test, |q| acq.search(&ctx.dataset.graph, q)).1
                }
                Panel::MultiVertex => {
                    let atc = Atc::index(ctx.dataset.graph.graph());
                    harness::time_queries(&split.test, |q| atc.search(&ctx.dataset.graph, q)).1
                }
            };
            scores[slot].push(harness::micro_f1(&baseline_pred, &split.test));
            // AQD-GNN.
            let aqd = harness::train_aqd(&ctx, run, &split);
            scores[slot + 1].push(harness::model_test_f1(
                &aqd.model,
                &ctx.tensors,
                &split.test,
                aqd.gamma,
            ));
        }
    }

    for (label, row) in row_labels.iter().zip(&scores) {
        table.push_values(label, row, 3);
    }
    table
}
