//! Table 2: average online query time (milliseconds) of every method.
//!
//! Classical methods are timed end-to-end per query; the learned model is
//! timed over its *online stage only* (one inference pass + constrained
//! BFS), its training having happened offline — exactly the separation
//! the paper's framework introduces.

use qdgnn_baselines::{Acq, Atc, CommunityMethod, Ctc, KEcc};
use qdgnn_core::train::predict_community;
use qdgnn_data::AttrMode;

use crate::harness::{self, DatasetContext};
use crate::profile::RunConfig;
use crate::table::ResultTable;

/// Runs the experiment; one row per method, trailing `Average` column.
pub fn run(run: &RunConfig) -> ResultTable {
    let datasets = run.datasets();
    let mut columns: Vec<&str> = vec!["Method"];
    let names: Vec<String> = datasets.iter().map(|d| d.name.clone()).collect();
    columns.extend(names.iter().map(String::as_str));
    columns.push("Average");
    let mut table = ResultTable::new("Table 2 — Average query time (ms)", &columns);

    const ROWS: [&str; 5] = ["CTC", "ECC", "ACQ", "ATC", "AQD-GNN"];
    let mut times: Vec<Vec<f64>> = vec![Vec::new(); ROWS.len()];

    for dataset in datasets {
        eprintln!("[table2] {}", dataset.stats_line());
        let ctx = DatasetContext::prepare(dataset, run);
        let ema = ctx.split_multi(AttrMode::Empty, run);
        let afc_multi = ctx.split_multi(AttrMode::FromCommunity, run);
        let afc_single = ctx.split_single(AttrMode::FromCommunity, run);

        let ctc = Ctc::index(ctx.dataset.graph.graph());
        times[0].push(harness::time_queries(&ema.test, |q| ctc.search(&ctx.dataset.graph, q)).0);

        let ecc = KEcc::new();
        times[1].push(harness::time_queries(&ema.test, |q| ecc.search(&ctx.dataset.graph, q)).0);

        let acq = Acq::new();
        times[2].push(
            harness::time_queries(&afc_single.test, |q| acq.search(&ctx.dataset.graph, q)).0,
        );

        let atc = Atc::index(ctx.dataset.graph.graph());
        times[3].push(
            harness::time_queries(&afc_multi.test, |q| atc.search(&ctx.dataset.graph, q)).0,
        );

        // AQD-GNN: train offline, time the online stage.
        let aqd = harness::train_aqd(&ctx, run, &afc_multi);
        times[4].push(
            harness::time_queries(&afc_multi.test, |q| {
                predict_community(&aqd.model, &ctx.tensors, q, aqd.gamma)
            })
            .0,
        );
    }

    for (method, row) in ROWS.iter().zip(&times) {
        let avg = row.iter().sum::<f64>() / row.len().max(1) as f64;
        let mut values = row.clone();
        values.push(avg);
        table.push_values(method, &values, 2);
    }
    table
}
