//! Figure 6: non-attributed community search — F1 of CTC, k-ECC,
//! Simple QD-GNN, QD-GNN and AQD-GNN (with empty query attributes)
//! across datasets.

use qdgnn_baselines::{CommunityMethod, Ctc, KEcc};
use qdgnn_data::AttrMode;

use crate::harness::{self, DatasetContext};
use crate::profile::RunConfig;
use crate::table::ResultTable;

/// Method rows of the figure, in plot order.
pub const METHODS: [&str; 5] = ["CTC", "ECC", "Simple QD-GNN", "QD-GNN", "AQD-GNN (EmA)"];

/// Runs the experiment; one column per dataset, one row per method.
pub fn run(run: &RunConfig) -> ResultTable {
    let datasets = run.datasets();
    let mut columns: Vec<&str> = vec!["Method"];
    let names: Vec<String> = datasets.iter().map(|d| d.name.clone()).collect();
    columns.extend(names.iter().map(String::as_str));
    let mut table = ResultTable::new(
        "Figure 6 — Non-attributed community search (F1)",
        &columns,
    );
    let mut scores: Vec<Vec<f64>> = vec![Vec::new(); METHODS.len()];

    for dataset in datasets {
        eprintln!("[fig6] {}", dataset.stats_line());
        let ctx = DatasetContext::prepare(dataset, run);
        let split = ctx.split_multi(AttrMode::Empty, run);

        // Classical baselines (no training stage).
        let ctc = Ctc::index(ctx.dataset.graph.graph());
        let (_, ctc_pred) =
            harness::time_queries(&split.test, |q| ctc.search(&ctx.dataset.graph, q));
        scores[0].push(harness::micro_f1(&ctc_pred, &split.test));

        let ecc = KEcc::new();
        let (_, ecc_pred) =
            harness::time_queries(&split.test, |q| ecc.search(&ctx.dataset.graph, q));
        scores[1].push(harness::micro_f1(&ecc_pred, &split.test));

        // Learned models.
        let simple = harness::train_simple(&ctx, run, &split);
        scores[2].push(harness::model_test_f1(
            &simple.model,
            &ctx.tensors,
            &split.test,
            simple.gamma,
        ));
        let qd = harness::train_qd(&ctx, run, &split);
        scores[3].push(harness::model_test_f1(&qd.model, &ctx.tensors, &split.test, qd.gamma));
        let aqd = harness::train_aqd(&ctx, run, &split);
        scores[4].push(harness::model_test_f1(
            &aqd.model,
            &ctx.tensors,
            &split.test,
            aqd.gamma,
        ));
    }

    for (method, row) in METHODS.iter().zip(&scores) {
        table.push_values(method, row, 3);
    }
    table
}
