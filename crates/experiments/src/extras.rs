//! Extension ablations beyond the paper's §7.5: the design choices this
//! implementation had to make concrete.
//!
//! * **Aggregation normalization** — the paper's Eq. 4/5 say `SUM` "as
//!   Vanilla GCN does", and Vanilla GCN applies Laplacian smoothing; this
//!   ablation compares raw SUM, symmetric GCN normalization and mean
//!   aggregation (the [`AdjNorm`] choice).
//! * **Fusion aggregator** — the paper's Feature Fusion says
//!   "Concatenation, SUM, etc."; §7.1.6 picks concatenation. This
//!   ablation quantifies the gap.

use qdgnn_core::config::{FusionAgg, ModelConfig};
use qdgnn_core::models::AqdGnn;
use qdgnn_core::train::Trainer;
use qdgnn_core::GraphTensors;
use qdgnn_data::AttrMode;
use qdgnn_graph::attributed::AdjNorm;

use crate::harness::{self, DatasetContext};
use crate::profile::RunConfig;
use crate::table::ResultTable;

fn train_aqd_with(
    ctx: &DatasetContext,
    run: &RunConfig,
    mc: ModelConfig,
) -> f64 {
    // AdjNorm changes the tensors, so rebuild them from the model config.
    let tensors = GraphTensors::new(&ctx.dataset.graph, mc.adj_norm, mc.fusion_graph_attr_cap);
    let split = ctx.split_multi(AttrMode::FromCommunity, run);
    let trained = Trainer::new(run.profile.train_config(run.seed)).train(
        AqdGnn::new(mc, tensors.d),
        &tensors,
        &split.train,
        &split.val,
    );
    harness::model_test_f1(&trained.model, &tensors, &split.test, trained.gamma)
}

/// Compares the three adjacency normalizations on AQD-GNN (AFC).
pub fn adj_norm_ablation(run: &RunConfig) -> ResultTable {
    let datasets = run.datasets();
    let mut columns: Vec<&str> = vec!["Aggregation"];
    let names: Vec<String> = datasets.iter().map(|d| d.name.clone()).collect();
    columns.extend(names.iter().map(String::as_str));
    let mut table =
        ResultTable::new("Extra ablation — adjacency normalization (AQD-GNN F1)", &columns);

    let variants: [(&str, AdjNorm); 3] = [
        ("GCN symmetric", AdjNorm::GcnSym),
        ("raw SUM", AdjNorm::Sum),
        ("mean", AdjNorm::Mean),
    ];
    let mut scores: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for dataset in datasets {
        eprintln!("[adjnorm] {}", dataset.stats_line());
        let ctx = DatasetContext::prepare(dataset, run);
        for (i, (_, norm)) in variants.iter().enumerate() {
            let mc = ModelConfig { adj_norm: *norm, ..run.profile.model_config(run.seed) };
            scores[i].push(train_aqd_with(&ctx, run, mc));
        }
    }
    for ((label, _), row) in variants.iter().zip(&scores) {
        table.push_values(label, row, 3);
    }
    table
}

/// Empirical validation of the complexity analysis in §6.7: AQD-GNN's
/// per-epoch training cost and per-query online cost should both scale
/// linearly in `|E| + |E_B|` (for fixed layer count and width).
///
/// Generates graphs of doubling size and reports seconds/epoch,
/// ms/query, and the cost-per-edge ratio, which should stay roughly
/// flat.
pub fn complexity_scaling(run: &RunConfig) -> ResultTable {
    use std::time::Instant;

    let mut table = ResultTable::new(
        "Extra — §6.7 complexity validation (AQD-GNN cost vs |E|+|E_B|)",
        &["|V|", "|E|+|E_B|", "epoch(s)", "query(ms)", "µs/edge/epoch"],
    );
    let sizes: &[usize] = match run.profile {
        crate::profile::Profile::Fast => &[4, 8, 16],
        _ => &[4, 8, 16, 32],
    };
    for &k in sizes {
        let data = qdgnn_data::GeneratorConfig {
            num_communities: k,
            community_size_mean: 40.0,
            vocab_size: 120,
            topics_per_community: 20,
            attrs_per_vertex_mean: 8.0,
            seed: run.seed ^ k as u64,
            ..Default::default()
        }
        .generate(format!("scale-{k}"));
        let mc = ModelConfig { hidden: 32, ..run.profile.model_config(run.seed) };
        let tensors = GraphTensors::new(&data.graph, mc.adj_norm, mc.fusion_graph_attr_cap);
        let queries =
            qdgnn_data::queries::generate(&data, 24, 1, 3, AttrMode::FromCommunity, run.seed);
        let split = qdgnn_data::QuerySplit::new(queries, 16, 4, 4);

        // One-epoch training cost (averaged over 3 epochs).
        let t0 = Instant::now();
        let trained = Trainer::new(qdgnn_core::train::TrainConfig {
            epochs: 3,
            validate_every: 100,
            ..Default::default()
        })
        .train(AqdGnn::new(mc, tensors.d), &tensors, &split.train, &[]);
        let epoch_s = t0.elapsed().as_secs_f64() / 3.0;

        // Online query cost.
        let (query_ms, _) = harness::time_queries(&split.test, |q| {
            qdgnn_core::train::predict_community(&trained.model, &tensors, q, 0.5)
        });

        let edges = data.graph.graph().num_edges() + data.graph.bipartite_edge_count();
        table.push_row(vec![
            data.graph.num_vertices().to_string(),
            edges.to_string(),
            format!("{epoch_s:.3}"),
            format!("{query_ms:.2}"),
            format!("{:.2}", epoch_s * 1e6 / edges as f64),
        ]);
    }
    table
}

/// Compares concatenation against sum fusion on AQD-GNN (AFC).
pub fn fusion_agg_ablation(run: &RunConfig) -> ResultTable {
    let datasets = run.datasets();
    let mut columns: Vec<&str> = vec!["Fusion AGG"];
    let names: Vec<String> = datasets.iter().map(|d| d.name.clone()).collect();
    columns.extend(names.iter().map(String::as_str));
    let mut table =
        ResultTable::new("Extra ablation — fusion aggregator (AQD-GNN F1)", &columns);

    let variants: [(&str, FusionAgg); 3] = [
        ("Concatenation", FusionAgg::Concat),
        ("SUM", FusionAgg::Sum),
        ("Attention gates", FusionAgg::Attention),
    ];
    let mut scores: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for dataset in datasets {
        eprintln!("[fusionagg] {}", dataset.stats_line());
        let ctx = DatasetContext::prepare(dataset, run);
        for (i, (_, agg)) in variants.iter().enumerate() {
            let mc = ModelConfig { fusion: *agg, ..run.profile.model_config(run.seed) };
            scores[i].push(train_aqd_with(&ctx, run, mc));
        }
    }
    for ((label, _), row) in variants.iter().zip(&scores) {
        table.push_values(label, row, 3);
    }
    table
}
