//! Run profiles and CLI argument parsing.
//!
//! The `paper` profile replicates §7.1's setup exactly (all 14 small
//! datasets, 350 queries split 150:100:100, 300 epochs, hidden width
//! 128). The `std` and `fast` profiles shrink the compute so every
//! experiment finishes in minutes on a laptop while preserving the
//! comparisons; every table records which profile produced it.

use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};

use qdgnn_core::config::ModelConfig;
use qdgnn_core::train::TrainConfig;
use qdgnn_data::{presets, Dataset};
use qdgnn_obs::runs::{self, DashServer, RunRecorder};

/// Compute budget for an experiment run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Smallest datasets, few epochs (CI / smoke runs).
    Fast,
    /// All small datasets at reduced epochs/width (default).
    Std,
    /// The paper's §7.1.6 settings.
    Paper,
}

impl Profile {
    /// Parses a profile name.
    pub fn parse(s: &str) -> Option<Profile> {
        match s {
            "fast" => Some(Profile::Fast),
            "std" => Some(Profile::Std),
            "paper" => Some(Profile::Paper),
            _ => None,
        }
    }

    /// The profile's display name.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Fast => "fast",
            Profile::Std => "std",
            Profile::Paper => "paper",
        }
    }

    /// `(total, train, val, test)` query counts (§7.1.3–4).
    pub fn query_counts(self) -> (usize, usize, usize, usize) {
        match self {
            Profile::Fast => (120, 60, 30, 30),
            Profile::Std => (210, 90, 60, 60),
            Profile::Paper => (350, 150, 100, 100),
        }
    }

    /// Model hyper-parameters for this profile.
    pub fn model_config(self, seed: u64) -> ModelConfig {
        let hidden = match self {
            Profile::Fast => 48,
            Profile::Std => 64,
            Profile::Paper => 128,
        };
        ModelConfig { hidden, seed, ..ModelConfig::default() }
    }

    /// Training hyper-parameters for this profile.
    pub fn train_config(self, seed: u64) -> TrainConfig {
        let (epochs, validate_every) = match self {
            Profile::Fast => (40, 10),
            Profile::Std => (80, 10),
            Profile::Paper => (300, 10),
        };
        TrainConfig { epochs, validate_every, seed, ..TrainConfig::default() }
    }

    /// The datasets this profile evaluates (column order of Table 2).
    pub fn datasets(self) -> Vec<Dataset> {
        match self {
            Profile::Fast => vec![
                presets::fb_414(),
                presets::fb_686(),
                presets::cornell(),
                presets::texas(),
            ],
            Profile::Std => {
                let mut v = presets::facebook_sets();
                v.extend(presets::webkb_sets());
                v
            }
            Profile::Paper => presets::all_small(),
        }
    }
}

/// Parsed command-line configuration shared by all experiment binaries.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Compute profile.
    pub profile: Profile,
    /// Global seed (query generation, model init).
    pub seed: u64,
    /// Output directory for CSVs.
    pub out_dir: PathBuf,
    /// Optional dataset-name filter (comma-separated, case-insensitive).
    pub dataset_filter: Option<Vec<String>>,
    /// Write the structured metrics stream (JSONL events + final
    /// snapshot) to this path at the end of the run.
    pub metrics_out: Option<PathBuf>,
    /// Run-registry root: journal this run's manifest + series under
    /// `<run_dir>/run-NNNNNN/`.
    pub run_dir: Option<PathBuf>,
    /// Resume lineage: continue from this parent run id under `run_dir`
    /// (a new run id is allocated; the manifest records `resumed_from`).
    pub resume_run: Option<String>,
    /// Serve the live run dashboard on this address while running.
    pub dash: Option<String>,
    /// Keep the process (and the dashboard) alive this many seconds
    /// after the run finishes, so CI can scrape the endpoints.
    pub dash_linger_secs: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            profile: Profile::Std,
            seed: 7,
            out_dir: PathBuf::from("results"),
            dataset_filter: None,
            metrics_out: None,
            run_dir: None,
            resume_run: None,
            dash: None,
            dash_linger_secs: 0,
        }
    }
}

/// The dashboard listener outlives `from_args` and is shut down by
/// [`RunConfig::write_metrics`] after any `--dash-linger-secs` window.
fn dash_slot() -> &'static Mutex<Option<DashServer>> {
    static SLOT: OnceLock<Mutex<Option<DashServer>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

impl RunConfig {
    /// Parses `std::env::args()`: `--profile P --seed N --out DIR
    /// --datasets a,b,c`. Unknown arguments abort with usage help.
    pub fn from_args() -> RunConfig {
        let mut cfg = RunConfig::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let need_value = |i: usize| -> &str {
                args.get(i + 1).unwrap_or_else(|| {
                    eprintln!("missing value for {}", args[i]);
                    std::process::exit(2);
                })
            };
            match args[i].as_str() {
                "--profile" => {
                    let v = need_value(i);
                    cfg.profile = Profile::parse(v).unwrap_or_else(|| {
                        eprintln!("unknown profile `{v}` (fast|std|paper)");
                        std::process::exit(2);
                    });
                    i += 2;
                }
                "--seed" => {
                    cfg.seed = need_value(i).parse().unwrap_or_else(|_| {
                        eprintln!("bad seed");
                        std::process::exit(2);
                    });
                    i += 2;
                }
                "--out" => {
                    cfg.out_dir = PathBuf::from(need_value(i));
                    i += 2;
                }
                "--datasets" => {
                    cfg.dataset_filter = Some(
                        need_value(i).split(',').map(|s| s.trim().to_lowercase()).collect(),
                    );
                    i += 2;
                }
                "--metrics-out" => {
                    cfg.metrics_out = Some(PathBuf::from(need_value(i)));
                    // Per-span/per-event JSONL only accumulates when a run
                    // asked for a metrics file; snapshots are always free.
                    qdgnn_obs::record_events(true);
                    i += 2;
                }
                "--run-dir" => {
                    cfg.run_dir = Some(PathBuf::from(need_value(i)));
                    i += 2;
                }
                "--resume-run" => {
                    cfg.resume_run = Some(need_value(i).to_string());
                    i += 2;
                }
                "--dash" => {
                    cfg.dash = Some(need_value(i).to_string());
                    i += 2;
                }
                "--dash-linger-secs" => {
                    cfg.dash_linger_secs = need_value(i).parse().unwrap_or_else(|_| {
                        eprintln!("bad --dash-linger-secs");
                        std::process::exit(2);
                    });
                    i += 2;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: <experiment> [--profile fast|std|paper] [--seed N] \
                         [--out DIR] [--datasets a,b,c] [--metrics-out FILE.jsonl] \
                         [--run-dir DIR] [--resume-run run-NNNNNN] [--dash ADDR] \
                         [--dash-linger-secs N]"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument `{other}` (try --help)");
                    std::process::exit(2);
                }
            }
        }
        cfg.start_run_observability();
        cfg
    }

    /// Opt-in run observability, applied once the full argument vector
    /// is parsed (flag order must not matter): `--run-dir` starts (or
    /// resumes, with `--resume-run`) a journaled run and installs it as
    /// the process-global recorder with the panic-time flight flush;
    /// `--dash` serves the run root live. Errors abort with exit 2 —
    /// silently losing a requested journal would defeat the point.
    fn start_run_observability(&self) {
        let Some(root) = &self.run_dir else {
            if self.resume_run.is_some() || self.dash.is_some() {
                eprintln!("--resume-run/--dash require --run-dir");
                std::process::exit(2);
            }
            return;
        };
        if let Err(e) = std::fs::create_dir_all(root) {
            eprintln!("cannot create --run-dir {}: {e}", root.display());
            std::process::exit(2);
        }
        let dataset = self
            .datasets()
            .iter()
            .map(|d| d.name.clone())
            .collect::<Vec<_>>()
            .join(",");
        let hash = runs::config_hash(&format!(
            "profile={} seed={} datasets={dataset}",
            self.profile.name(),
            self.seed
        ));
        let recorder = match &self.resume_run {
            Some(parent) => RunRecorder::resume(root, parent),
            None => RunRecorder::create(root, self.seed, &dataset, &hash),
        };
        let recorder = recorder.unwrap_or_else(|e| {
            eprintln!("cannot start run journal under {}: {e}", root.display());
            std::process::exit(2);
        });
        eprintln!("run journal: {}", recorder.dir().display());
        runs::install(Arc::new(recorder));
        runs::install_panic_flush();
        if let Some(addr) = &self.dash {
            let dash = DashServer::start(addr, root.clone()).unwrap_or_else(|e| {
                eprintln!("cannot bind dashboard on {addr}: {e}");
                std::process::exit(2);
            });
            eprintln!("run dashboard: http://{}/", dash.addr());
            *dash_slot().lock().unwrap_or_else(|p| p.into_inner()) = Some(dash);
        }
    }

    /// The profile's datasets after applying `--datasets`.
    pub fn datasets(&self) -> Vec<Dataset> {
        let mut sets = self.profile.datasets();
        if let Some(filter) = &self.dataset_filter {
            sets.retain(|d| filter.iter().any(|f| d.name.to_lowercase() == *f));
        }
        sets
    }

    /// End-of-run metrics flush, called by every experiment binary:
    /// surfaces non-zero failure counters on stderr and, when
    /// `--metrics-out` was given, writes the JSONL event stream plus the
    /// final snapshot (the format `qdgnn-obs-validate` checks).
    pub fn write_metrics(&self) {
        let snap = qdgnn_obs::snapshot();
        if let Some(failures) = snap.counter("train.checkpoint_write_failures") {
            if failures > 0 {
                eprintln!("warning: {failures} checkpoint write(s) failed during training");
            }
        }
        if let Some(path) = &self.metrics_out {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    let _ = std::fs::create_dir_all(dir);
                }
            }
            match qdgnn_obs::write_jsonl(path) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("warning: metrics write to {} failed: {e}", path.display())
                }
            }
        }
        self.finish_run_observability();
    }

    /// End-of-run teardown for `--run-dir`/`--dash`: flushes the flight
    /// ring one final time, optionally lingers so a scraper can hit the
    /// dashboard after the run completed, then shuts the listener down
    /// and uninstalls the recorder.
    fn finish_run_observability(&self) {
        if self.run_dir.is_none() {
            return;
        }
        runs::flight_flush();
        if self.dash_linger_secs > 0 && self.dash.is_some() {
            // The 'lingering' line is what CI greps for before scraping.
            eprintln!("lingering {}s for dashboard scrapes", self.dash_linger_secs);
            std::thread::sleep(std::time::Duration::from_secs(self.dash_linger_secs));
        }
        // Take the server out of the slot first: shutdown() joins the
        // listener thread, which must not happen under the slot lock.
        let taken = dash_slot().lock().unwrap_or_else(|p| p.into_inner()).take();
        if let Some(mut dash) = taken {
            dash.shutdown();
        }
        runs::uninstall();
    }

    /// Banner line printed at the top of every experiment.
    pub fn banner(&self, experiment: &str) -> String {
        format!(
            "[{experiment}] profile={} seed={} datasets={}",
            self.profile.name(),
            self.seed,
            self.datasets().iter().map(|d| d.name.clone()).collect::<Vec<_>>().join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_parsing() {
        assert_eq!(Profile::parse("fast"), Some(Profile::Fast));
        assert_eq!(Profile::parse("paper"), Some(Profile::Paper));
        assert_eq!(Profile::parse("huge"), None);
    }

    #[test]
    fn paper_profile_matches_paper_settings() {
        let p = Profile::Paper;
        assert_eq!(p.query_counts(), (350, 150, 100, 100));
        let mc = p.model_config(1);
        assert_eq!(mc.hidden, 128);
        assert_eq!(mc.layers, 3);
        let tc = p.train_config(1);
        assert_eq!(tc.epochs, 300);
        assert_eq!(p.datasets().len(), 14);
    }

    #[test]
    fn dataset_filter_applies() {
        let cfg = RunConfig {
            dataset_filter: Some(vec!["cornell".into()]),
            profile: Profile::Fast,
            ..Default::default()
        };
        let sets = cfg.datasets();
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].name, "Cornell");
    }
}
