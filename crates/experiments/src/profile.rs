//! Run profiles and CLI argument parsing.
//!
//! The `paper` profile replicates §7.1's setup exactly (all 14 small
//! datasets, 350 queries split 150:100:100, 300 epochs, hidden width
//! 128). The `std` and `fast` profiles shrink the compute so every
//! experiment finishes in minutes on a laptop while preserving the
//! comparisons; every table records which profile produced it.

use std::path::PathBuf;

use qdgnn_core::config::ModelConfig;
use qdgnn_core::train::TrainConfig;
use qdgnn_data::{presets, Dataset};

/// Compute budget for an experiment run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Smallest datasets, few epochs (CI / smoke runs).
    Fast,
    /// All small datasets at reduced epochs/width (default).
    Std,
    /// The paper's §7.1.6 settings.
    Paper,
}

impl Profile {
    /// Parses a profile name.
    pub fn parse(s: &str) -> Option<Profile> {
        match s {
            "fast" => Some(Profile::Fast),
            "std" => Some(Profile::Std),
            "paper" => Some(Profile::Paper),
            _ => None,
        }
    }

    /// The profile's display name.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Fast => "fast",
            Profile::Std => "std",
            Profile::Paper => "paper",
        }
    }

    /// `(total, train, val, test)` query counts (§7.1.3–4).
    pub fn query_counts(self) -> (usize, usize, usize, usize) {
        match self {
            Profile::Fast => (120, 60, 30, 30),
            Profile::Std => (210, 90, 60, 60),
            Profile::Paper => (350, 150, 100, 100),
        }
    }

    /// Model hyper-parameters for this profile.
    pub fn model_config(self, seed: u64) -> ModelConfig {
        let hidden = match self {
            Profile::Fast => 48,
            Profile::Std => 64,
            Profile::Paper => 128,
        };
        ModelConfig { hidden, seed, ..ModelConfig::default() }
    }

    /// Training hyper-parameters for this profile.
    pub fn train_config(self, seed: u64) -> TrainConfig {
        let (epochs, validate_every) = match self {
            Profile::Fast => (40, 10),
            Profile::Std => (80, 10),
            Profile::Paper => (300, 10),
        };
        TrainConfig { epochs, validate_every, seed, ..TrainConfig::default() }
    }

    /// The datasets this profile evaluates (column order of Table 2).
    pub fn datasets(self) -> Vec<Dataset> {
        match self {
            Profile::Fast => vec![
                presets::fb_414(),
                presets::fb_686(),
                presets::cornell(),
                presets::texas(),
            ],
            Profile::Std => {
                let mut v = presets::facebook_sets();
                v.extend(presets::webkb_sets());
                v
            }
            Profile::Paper => presets::all_small(),
        }
    }
}

/// Parsed command-line configuration shared by all experiment binaries.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Compute profile.
    pub profile: Profile,
    /// Global seed (query generation, model init).
    pub seed: u64,
    /// Output directory for CSVs.
    pub out_dir: PathBuf,
    /// Optional dataset-name filter (comma-separated, case-insensitive).
    pub dataset_filter: Option<Vec<String>>,
    /// Write the structured metrics stream (JSONL events + final
    /// snapshot) to this path at the end of the run.
    pub metrics_out: Option<PathBuf>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            profile: Profile::Std,
            seed: 7,
            out_dir: PathBuf::from("results"),
            dataset_filter: None,
            metrics_out: None,
        }
    }
}

impl RunConfig {
    /// Parses `std::env::args()`: `--profile P --seed N --out DIR
    /// --datasets a,b,c`. Unknown arguments abort with usage help.
    pub fn from_args() -> RunConfig {
        let mut cfg = RunConfig::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let need_value = |i: usize| -> &str {
                args.get(i + 1).unwrap_or_else(|| {
                    eprintln!("missing value for {}", args[i]);
                    std::process::exit(2);
                })
            };
            match args[i].as_str() {
                "--profile" => {
                    let v = need_value(i);
                    cfg.profile = Profile::parse(v).unwrap_or_else(|| {
                        eprintln!("unknown profile `{v}` (fast|std|paper)");
                        std::process::exit(2);
                    });
                    i += 2;
                }
                "--seed" => {
                    cfg.seed = need_value(i).parse().unwrap_or_else(|_| {
                        eprintln!("bad seed");
                        std::process::exit(2);
                    });
                    i += 2;
                }
                "--out" => {
                    cfg.out_dir = PathBuf::from(need_value(i));
                    i += 2;
                }
                "--datasets" => {
                    cfg.dataset_filter = Some(
                        need_value(i).split(',').map(|s| s.trim().to_lowercase()).collect(),
                    );
                    i += 2;
                }
                "--metrics-out" => {
                    cfg.metrics_out = Some(PathBuf::from(need_value(i)));
                    // Per-span/per-event JSONL only accumulates when a run
                    // asked for a metrics file; snapshots are always free.
                    qdgnn_obs::record_events(true);
                    i += 2;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: <experiment> [--profile fast|std|paper] [--seed N] \
                         [--out DIR] [--datasets a,b,c] [--metrics-out FILE.jsonl]"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument `{other}` (try --help)");
                    std::process::exit(2);
                }
            }
        }
        cfg
    }

    /// The profile's datasets after applying `--datasets`.
    pub fn datasets(&self) -> Vec<Dataset> {
        let mut sets = self.profile.datasets();
        if let Some(filter) = &self.dataset_filter {
            sets.retain(|d| filter.iter().any(|f| d.name.to_lowercase() == *f));
        }
        sets
    }

    /// End-of-run metrics flush, called by every experiment binary:
    /// surfaces non-zero failure counters on stderr and, when
    /// `--metrics-out` was given, writes the JSONL event stream plus the
    /// final snapshot (the format `qdgnn-obs-validate` checks).
    pub fn write_metrics(&self) {
        let snap = qdgnn_obs::snapshot();
        if let Some(failures) = snap.counter("train.checkpoint_write_failures") {
            if failures > 0 {
                eprintln!("warning: {failures} checkpoint write(s) failed during training");
            }
        }
        if let Some(path) = &self.metrics_out {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    let _ = std::fs::create_dir_all(dir);
                }
            }
            match qdgnn_obs::write_jsonl(path) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("warning: metrics write to {} failed: {e}", path.display())
                }
            }
        }
    }

    /// Banner line printed at the top of every experiment.
    pub fn banner(&self, experiment: &str) -> String {
        format!(
            "[{experiment}] profile={} seed={} datasets={}",
            self.profile.name(),
            self.seed,
            self.datasets().iter().map(|d| d.name.clone()).collect::<Vec<_>>().join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_parsing() {
        assert_eq!(Profile::parse("fast"), Some(Profile::Fast));
        assert_eq!(Profile::parse("paper"), Some(Profile::Paper));
        assert_eq!(Profile::parse("huge"), None);
    }

    #[test]
    fn paper_profile_matches_paper_settings() {
        let p = Profile::Paper;
        assert_eq!(p.query_counts(), (350, 150, 100, 100));
        let mc = p.model_config(1);
        assert_eq!(mc.hidden, 128);
        assert_eq!(mc.layers, 3);
        let tc = p.train_config(1);
        assert_eq!(tc.epochs, 300);
        assert_eq!(p.datasets().len(), 14);
    }

    #[test]
    fn dataset_filter_applies() {
        let cfg = RunConfig {
            dataset_filter: Some(vec!["cornell".into()]),
            profile: Profile::Fast,
            ..Default::default()
        };
        let sets = cfg.datasets();
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].name, "Cornell");
    }
}
