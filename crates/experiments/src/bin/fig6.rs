//! Reproduces Figure 6 (non-attributed community search F1).
fn main() {
    let run = qdgnn_experiments::RunConfig::from_args();
    eprintln!("{}", run.banner("fig6"));
    let table = qdgnn_experiments::fig6::run(&run);
    println!("{table}");
    let path = run.out_dir.join("fig6.csv");
    table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());
    run.write_metrics();
}
