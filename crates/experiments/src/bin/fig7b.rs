//! Reproduces Figure 7b (ACS F1, multi-vertex queries: ATC vs AQD-GNN).
fn main() {
    let run = qdgnn_experiments::RunConfig::from_args();
    eprintln!("{}", run.banner("fig7b"));
    let table = qdgnn_experiments::fig7::run(&run, qdgnn_experiments::fig7::Panel::MultiVertex);
    println!("{table}");
    let path = run.out_dir.join("fig7b.csv");
    table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());
    run.write_metrics();
}
