//! Runs the extension ablations (adjacency normalization, fusion
//! aggregator) — design choices the paper leaves open.
fn main() {
    let run = qdgnn_experiments::RunConfig::from_args();
    eprintln!("{}", run.banner("extras"));
    let a = qdgnn_experiments::extras::adj_norm_ablation(&run);
    println!("{a}");
    a.save_csv(run.out_dir.join("extra_adjnorm.csv")).expect("write CSV");
    let b = qdgnn_experiments::extras::fusion_agg_ablation(&run);
    println!("{b}");
    b.save_csv(run.out_dir.join("extra_fusionagg.csv")).expect("write CSV");
    let c = qdgnn_experiments::extras::complexity_scaling(&run);
    println!("{c}");
    c.save_csv(run.out_dir.join("extra_complexity.csv")).expect("write CSV");
    eprintln!(
        "wrote {}/extra_adjnorm.csv, extra_fusionagg.csv, extra_complexity.csv",
        run.out_dir.display()
    );
    run.write_metrics();
}
