//! Reproduces Figure 7a (ACS F1, one-vertex queries: ACQ vs AQD-GNN).
fn main() {
    let run = qdgnn_experiments::RunConfig::from_args();
    eprintln!("{}", run.banner("fig7a"));
    let table = qdgnn_experiments::fig7::run(&run, qdgnn_experiments::fig7::Panel::OneVertex);
    println!("{table}");
    let path = run.out_dir.join("fig7a.csv");
    table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());
    run.write_metrics();
}
