//! Reproduces Table 2 (average query time in milliseconds).
fn main() {
    let run = qdgnn_experiments::RunConfig::from_args();
    eprintln!("{}", run.banner("table2"));
    let table = qdgnn_experiments::table2::run(&run);
    println!("{table}");
    let path = run.out_dir.join("table2.csv");
    table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());
    run.write_metrics();
}
