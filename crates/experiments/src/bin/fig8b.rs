//! Reproduces Figure 8b (threshold γ sensitivity).
fn main() {
    let run = qdgnn_experiments::RunConfig::from_args();
    eprintln!("{}", run.banner("fig8b"));
    let table = qdgnn_experiments::ablation::fig8b(&run);
    println!("{table}");
    let path = run.out_dir.join("fig8b.csv");
    table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());
    run.write_metrics();
}
