//! Reproduces Figure 8a (Feature Fusion ablation).
fn main() {
    let run = qdgnn_experiments::RunConfig::from_args();
    eprintln!("{}", run.banner("fig8a"));
    let table = qdgnn_experiments::ablation::fig8a(&run);
    println!("{table}");
    let path = run.out_dir.join("fig8a.csv");
    table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());
    run.write_metrics();
}
