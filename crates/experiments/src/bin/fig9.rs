//! Reproduces Figure 9 (data-split-ratio sweeps, both panels).
fn main() {
    let run = qdgnn_experiments::RunConfig::from_args();
    eprintln!("{}", run.banner("fig9"));
    let a = qdgnn_experiments::ablation::fig9(&run, true);
    println!("{a}");
    a.save_csv(run.out_dir.join("fig9a.csv")).expect("write CSV");
    let b = qdgnn_experiments::ablation::fig9(&run, false);
    println!("{b}");
    b.save_csv(run.out_dir.join("fig9b.csv")).expect("write CSV");
    eprintln!("wrote {}/fig9a.csv and fig9b.csv", run.out_dir.display());
    run.write_metrics();
}
