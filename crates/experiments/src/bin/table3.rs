//! Reproduces Table 3 (interactive community search: F1 % and s/interaction).
fn main() {
    let run = qdgnn_experiments::RunConfig::from_args();
    eprintln!("{}", run.banner("table3"));
    let table = qdgnn_experiments::table3::run(&run);
    println!("{table}");
    let path = run.out_dir.join("table3.csv");
    table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());
    run.write_metrics();
}
