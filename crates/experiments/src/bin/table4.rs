//! Reproduces Table 4 (ACS on large graphs: Reddit / Enlarged_Reddit).
fn main() {
    let run = qdgnn_experiments::RunConfig::from_args();
    eprintln!("{}", run.banner("table4"));
    let table = qdgnn_experiments::table4::run(&run);
    println!("{table}");
    let path = run.out_dir.join("table4.csv");
    table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());
    run.write_metrics();
}
