//! Reproduces Figure 10 (epoch-number and dropout-rate sweeps).
fn main() {
    let run = qdgnn_experiments::RunConfig::from_args();
    eprintln!("{}", run.banner("fig10"));
    let a = qdgnn_experiments::ablation::fig10a(&run);
    println!("{a}");
    a.save_csv(run.out_dir.join("fig10a.csv")).expect("write CSV");
    let b = qdgnn_experiments::ablation::fig10b(&run);
    println!("{b}");
    b.save_csv(run.out_dir.join("fig10b.csv")).expect("write CSV");
    eprintln!("wrote {}/fig10a.csv and fig10b.csv", run.out_dir.display());
    run.write_metrics();
}
