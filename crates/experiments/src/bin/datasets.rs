//! Prints the replica statistics table (the analogue of Table 1), so the
//! synthetic datasets can be compared against the paper's originals.
fn main() {
    let run = qdgnn_experiments::RunConfig::from_args();
    let mut table = qdgnn_experiments::ResultTable::new(
        "Table 1 — Replica dataset statistics",
        &["Dataset", "|V|", "|E|", "|F|", "|E_B|", "K", "AS"],
    );
    for d in run.datasets() {
        table.push_row(vec![
            d.name.clone(),
            d.graph.num_vertices().to_string(),
            d.graph.graph().num_edges().to_string(),
            d.graph.num_attrs().to_string(),
            d.graph.bipartite_edge_count().to_string(),
            d.communities.len().to_string(),
            format!("{:.2}", d.avg_community_size()),
        ]);
    }
    println!("{table}");
    let path = run.out_dir.join("table1_datasets.csv");
    table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());
    run.write_metrics();
}
