//! Table 3 bench: one interactive round — ICS-GNN's per-query GCN
//! re-training versus a single pre-trained model inference in the same
//! candidate-subgraph pipeline. The gap is the paper's framework
//! contribution (§5: detaching training from the online query stage).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use qdgnn_baselines::{IcsGnn, IcsGnnConfig};
use qdgnn_bench::{first_test_query, qd_fixture};
use qdgnn_core::interactive::{run_interactive, InteractiveConfig, ModelScorer};

fn bench(c: &mut Criterion) {
    let fixture = qd_fixture();
    let query = first_test_query(&fixture).clone();
    let graph = &fixture.dataset.graph;
    let cfg = InteractiveConfig { rounds: 1, candidate_size: 60, ..Default::default() };

    let mut group = c.benchmark_group("table3_interactive_round");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    let ics = IcsGnn::new(IcsGnnConfig {
        hidden: 16,
        epochs: 20,
        candidate_size: 60,
        ..Default::default()
    });
    group.bench_function("ICS-GNN (re-trains per query)", |b| {
        b.iter(|| run_interactive(graph, &ics, &query, &cfg, 1))
    });

    let scorer = ModelScorer { model: &fixture.trained.model };
    group.bench_function("QD-GNN (pre-trained inference)", |b| {
        b.iter(|| run_interactive(graph, &scorer, &query, &cfg, 1))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
