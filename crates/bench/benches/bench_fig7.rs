//! Figure 7 bench: attributed community search per method — ACQ and ATC
//! combinatorial searches versus one AQD-GNN inference pass.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use qdgnn_baselines::{Acq, Atc, CommunityMethod};
use qdgnn_bench::{aqd_fixture, first_test_query};
use qdgnn_core::train::predict_community;

fn bench(c: &mut Criterion) {
    let fixture = aqd_fixture();
    let query = first_test_query(&fixture).clone();
    let graph = &fixture.dataset.graph;

    let mut group = c.benchmark_group("fig7_attributed_query");
    group.sample_size(10).measurement_time(Duration::from_secs(2));

    let acq = Acq::new();
    group.bench_function("ACQ", |b| b.iter(|| acq.search(graph, &query)));

    let atc = Atc::index(graph.graph());
    group.bench_function("ATC", |b| b.iter(|| atc.search(graph, &query)));

    group.bench_function("AQD-GNN online", |b| {
        b.iter(|| {
            predict_community(&fixture.trained.model, &fixture.tensors, &query, fixture.trained.gamma)
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
