//! Figure 6 bench: the online query pipeline of each non-attributed
//! method — classical searches versus one learned-model inference pass —
//! at benchmark scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use qdgnn_baselines::{CommunityMethod, Ctc, KEcc};
use qdgnn_bench::{first_test_query, qd_fixture};
use qdgnn_core::train::predict_community;

fn bench(c: &mut Criterion) {
    let fixture = qd_fixture();
    let query = first_test_query(&fixture).clone();
    let graph = &fixture.dataset.graph;

    let mut group = c.benchmark_group("fig6_query_pipeline");
    group.sample_size(10).measurement_time(Duration::from_secs(2));

    let ctc = Ctc::index(graph.graph());
    group.bench_function("CTC", |b| b.iter(|| ctc.search(graph, &query)));

    let ecc = KEcc::new();
    group.bench_function("ECC", |b| b.iter(|| ecc.search(graph, &query)));

    group.bench_function("QD-GNN online", |b| {
        b.iter(|| {
            predict_community(&fixture.trained.model, &fixture.tensors, &query, fixture.trained.gamma)
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
