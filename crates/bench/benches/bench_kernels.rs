//! Substrate microbenches: the tensor kernels and graph decompositions
//! everything above is built on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use qdgnn_graph::{conn, core_decomp, truss};
use qdgnn_tensor::{Csr, Dense};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10).measurement_time(Duration::from_secs(2));

    // Dense matmul at the model's dominant shape (n × fused) · (fused × h).
    let n = 512;
    let a = Dense::from_vec(n, 96, (0..n * 96).map(|i| (i % 13) as f32 - 6.0).collect());
    let w = Dense::from_vec(96, 32, (0..96 * 32).map(|i| (i % 7) as f32 - 3.0).collect());
    group.bench_function("matmul 512x96x32", |b| b.iter(|| a.matmul(&w)));
    group.bench_function("transpose_matmul 512x96x32", |b| b.iter(|| a.transpose_matmul(&a)));

    // SpMM at adjacency scale.
    let dataset = qdgnn_data::presets::fb_414();
    let adj = qdgnn_graph::attributed::adjacency_matrix(
        dataset.graph.graph(),
        qdgnn_graph::attributed::AdjNorm::GcnSym,
    );
    let h = Dense::from_vec(
        adj.cols(),
        32,
        (0..adj.cols() * 32).map(|i| (i % 11) as f32 - 5.0).collect(),
    );
    group.bench_function("spmm adjacency x h", |b| b.iter(|| adj.spmm(&h)));
    group.bench_function("csr transpose", |b| b.iter(|| adj.transpose()));
    let triplets: Vec<(usize, usize, f32)> = (0..adj.rows())
        .flat_map(|r| adj.row_iter(r).map(move |(c, v)| (r, c, v)))
        .collect();
    group.bench_function("csr from_triplets", |b| {
        b.iter(|| Csr::from_triplets(adj.rows(), adj.cols(), &triplets))
    });

    // Graph decompositions on the FB-414 replica.
    let g = dataset.graph.graph();
    group.bench_function("core decomposition", |b| b.iter(|| core_decomp::core_numbers(g)));
    group.bench_function("truss decomposition", |b| b.iter(|| truss::truss_decomposition(g)));
    group.bench_function("stoer-wagner min cut", |b| b.iter(|| conn::min_cut(g)));
    group.bench_function("fusion graph construction", |b| {
        b.iter(|| dataset.graph.fusion_graph(100))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
