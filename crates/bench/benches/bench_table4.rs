//! Table 4 bench: the large-graph subgraph mechanism — candidate
//! extraction, subgraph inference, and the ACQ search it replaces, on the
//! benchmark-scale Reddit replica.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use qdgnn_baselines::{Acq, CommunityMethod};
use qdgnn_core::models::AqdGnn;
use qdgnn_core::subgraph::{extract_candidate, predict_community_subgraph, SubgraphConfig};
use qdgnn_core::CsModel;
use qdgnn_data::{queries as qgen, AttrMode};
use qdgnn_experiments::profile::Profile;

fn bench(c: &mut Criterion) {
    let dataset = qdgnn_experiments::table4::reddit_for(Profile::Fast);
    let mc = qdgnn_bench::bench_model_config();
    let fusion = dataset.graph.fusion_graph(mc.fusion_graph_attr_cap);
    let query = qgen::generate(&dataset, 1, 1, 1, AttrMode::FromCommunity, 3).remove(0);
    let sub_cfg = SubgraphConfig { two_hop_below: 64, max_vertices: 512 };
    let model = AqdGnn::new(mc, dataset.graph.num_attrs());

    let mut group = c.benchmark_group("table4_large_graph");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    group.bench_function("candidate extraction", |b| {
        b.iter(|| extract_candidate(&dataset.graph, &fusion, &query, model.config(), &sub_cfg))
    });

    group.bench_function("AQD-GNN subgraph query", |b| {
        b.iter(|| {
            predict_community_subgraph(&model, &dataset.graph, &fusion, &query, 0.5, &sub_cfg)
        })
    });

    let acq = Acq::new();
    group.bench_function("ACQ full-graph query", |b| {
        b.iter(|| acq.search(&dataset.graph, &query))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
