//! Table 2 bench: average online query time per method on the FB-414
//! replica — the table's exact measurement, Criterion-instrumented.
//!
//! The headline shape to look for: the four combinatorial baselines' cost
//! scales with the graph, while AQD-GNN inference is a fixed small number
//! of sparse/dense products.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use qdgnn_baselines::{Acq, Atc, CommunityMethod, Ctc, KEcc};
use qdgnn_bench::{aqd_untrained, first_test_query};
use qdgnn_core::train::predict_community;

fn bench(c: &mut Criterion) {
    let fixture = aqd_untrained();
    let query = first_test_query(&fixture).clone();
    let graph = &fixture.dataset.graph;

    let mut group = c.benchmark_group("table2_query_time");
    group.sample_size(10).measurement_time(Duration::from_secs(2));

    let ctc = Ctc::index(graph.graph());
    group.bench_function("CTC", |b| b.iter(|| ctc.search(graph, &query)));

    let ecc = KEcc::new();
    group.bench_function("ECC", |b| b.iter(|| ecc.search(graph, &query)));

    let acq = Acq::new();
    group.bench_function("ACQ", |b| b.iter(|| acq.search(graph, &query)));

    let atc = Atc::index(graph.graph());
    group.bench_function("ATC", |b| b.iter(|| atc.search(graph, &query)));

    group.bench_function("AQD-GNN", |b| {
        b.iter(|| {
            predict_community(&fixture.trained.model, &fixture.tensors, &query, fixture.trained.gamma)
        })
    });

    // Serving-optimized variant: the query-independent Graph Encoder is
    // precomputed once; each query pays only for its own branches.
    let stage = qdgnn_core::OnlineStage::new(
        &fixture.trained.model,
        &fixture.tensors,
        fixture.trained.gamma,
    );
    assert!(stage.is_cached());
    group.bench_function("AQD-GNN (graph-cache)", |b| b.iter(|| stage.query(&query)));

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
