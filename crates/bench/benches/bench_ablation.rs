//! Ablation benches (Figures 8–10): the cost side of the design choices —
//! forward passes with/without Feature Fusion, train- versus eval-mode
//! passes (dropout + batch statistics), the γ-sweep identification step,
//! and a full training epoch.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

use qdgnn_core::config::ModelConfig;
use qdgnn_core::identify::identify_community;
use qdgnn_core::models::{predict_scores, AqdGnn, CsModel};
use qdgnn_core::train::{encode_query, TrainConfig, Trainer};
use qdgnn_core::GraphTensors;
use qdgnn_data::AttrMode;
use qdgnn_nn::Mode;
use qdgnn_tensor::Tape;

fn bench(c: &mut Criterion) {
    let dataset = qdgnn_data::presets::toy();
    let mc = qdgnn_bench::bench_model_config();
    let tensors = GraphTensors::new(&dataset.graph, mc.adj_norm, mc.fusion_graph_attr_cap);
    let split = qdgnn_bench::bench_queries(&dataset, AttrMode::FromCommunity, 1, 3);
    let query = split.test[0].clone();

    let fused = AqdGnn::new(mc.clone(), tensors.d);
    let nofu = AqdGnn::new(ModelConfig { feature_fusion: false, ..mc.clone() }, tensors.d);
    let qv = encode_query(&fused, &tensors, &query);

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10).measurement_time(Duration::from_secs(2));

    group.bench_function("fig8a: forward with fusion", |b| {
        b.iter(|| predict_scores(&fused, &tensors, &qv))
    });
    group.bench_function("fig8a: forward without fusion", |b| {
        b.iter(|| predict_scores(&nofu, &tensors, &qv))
    });

    let scores = predict_scores(&fused, &tensors, &qv);
    let grid: Vec<f32> = (1..=19).map(|i| i as f32 * 0.05).collect();
    group.bench_function("fig8b: gamma sweep identification", |b| {
        b.iter(|| {
            grid.iter()
                .map(|&g| identify_community(&tensors, &query.vertices, &scores, g, true).len())
                .sum::<usize>()
        })
    });

    // Fig 10b cost side: train-mode forward (dropout + batch stats) vs
    // eval-mode forward.
    group.bench_function("fig10b: train-mode forward", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
            let out = fused.forward(&mut tape, &tensors, &qv, Mode::Train, &mut rng);
            Arc::clone(tape.value(out.logits))
        })
    });

    // Fig 10a cost side: a full training epoch over the bench split.
    group.bench_function("fig10a: one training epoch", |b| {
        b.iter(|| {
            let model = AqdGnn::new(mc.clone(), tensors.d);
            let trainer = Trainer::new(TrainConfig {
                epochs: 1,
                validate_every: 10,
                ..Default::default()
            });
            trainer.train(model, &tensors, &split.train, &[]).report.loss_history
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
