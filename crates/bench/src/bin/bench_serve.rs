//! `qdgnn-bench` — serving-latency benchmark and regression gate.
//!
//! Subcommands:
//!
//! ```text
//! qdgnn-bench [serve] [--out OUT.json] [--metrics-out M.jsonl]
//!     Train a bench-scale AQD-GNN per Fast-profile dataset, serve every
//!     test query through qdgnn_core::OnlineStage under the obs layer,
//!     and write the BENCH_serve.json report (p50/p95 serve latency plus
//!     the encode / forward / BFS stage breakdown). The checked-in copy
//!     at the repo root is the serving-perf regression baseline.
//!
//! qdgnn-bench compare [--baseline-serve P] [--baseline-train P]
//!                     [--serve-rounds N] [--train-rounds N]
//!                     [--skip-train] [--metrics-out M.jsonl]
//!     Re-measure and gate against the checked-in baselines with the
//!     noise-tolerant best-round thresholds from qdgnn_bench::gate
//!     (warn > ×1.10, fail > ×1.25). Exits nonzero on FAIL.
//!
//! qdgnn-bench serve-throughput [--datasets a,b] [--metrics-out M.jsonl]
//!     Fast smoke: sequential vs batched serving QPS on a small dataset
//!     subset (default cornell,texas), with an inline bit-identity check
//!     of the batched scores. Exits nonzero on a degenerate measurement.
//! ```
//!
//! A bare positional argument is accepted as the serve output path for
//! backward compatibility (`qdgnn-bench out.json`).

use std::path::PathBuf;
use std::process::ExitCode;

use qdgnn_bench::gate::{self, Verdict};
use qdgnn_bench::measure::{measure_serve, measure_serve_on, measure_train, EventLog};
use qdgnn_bench::report::{ServeReport, TrainBenchReport};

fn fail(msg: &str) -> ExitCode {
    eprintln!("qdgnn-bench: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    assert!(
        qdgnn_obs::enabled(),
        "qdgnn-bench needs the obs layer; build with default features"
    );
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compare") => compare_main(&args[1..]),
        Some("serve") => serve_main(&args[1..]),
        Some("serve-throughput") => throughput_main(&args[1..]),
        _ => serve_main(&args),
    }
}

/// `serve-throughput` smoke: measure sequential vs batched serving QPS
/// on a small dataset subset (default `cornell,texas`) and exit nonzero
/// if the batched path produced no throughput. The measurement asserts
/// batched/sequential bit-identity inline before timing, so this also
/// smoke-tests correctness of the stacked forward pass at bench scale.
fn throughput_main(args: &[String]) -> ExitCode {
    let mut names = vec!["cornell".to_string(), "texas".to_string()];
    let mut metrics_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--datasets" => match it.next() {
                Some(v) => names = v.split(',').map(str::to_string).collect(),
                None => return fail("--datasets needs a comma-separated list"),
            },
            "--metrics-out" => match it.next() {
                Some(v) => metrics_out = Some(PathBuf::from(v)),
                None => return fail("--metrics-out needs a path"),
            },
            flag => return fail(&format!("unknown serve-throughput flag `{flag}`")),
        }
    }
    let mut datasets = Vec::new();
    for name in &names {
        match name.as_str() {
            "cornell" => datasets.push(qdgnn_data::presets::cornell()),
            "texas" => datasets.push(qdgnn_data::presets::texas()),
            "fb_414" => datasets.push(qdgnn_data::presets::fb_414()),
            "fb_686" => datasets.push(qdgnn_data::presets::fb_686()),
            other => return fail(&format!("unknown dataset `{other}`")),
        }
    }

    let mut log = EventLog::new(metrics_out);
    let report = match measure_serve_on(&datasets, 1, &mut log).into_iter().next() {
        Some(r) => r,
        None => return fail("measurement produced no report"),
    };
    let mut broken = false;
    for (name, d) in &report.datasets {
        let t = &d.throughput;
        println!(
            "{name}: sequential {:.0} qps, batched(batch={}) {:.0} qps, speedup x{:.2}",
            t.sequential_qps, t.batch_size, t.batched_qps, t.speedup()
        );
        if t.batched_qps <= 0.0 || t.sequential_qps <= 0.0 {
            eprintln!("qdgnn-bench: {name}: degenerate throughput measurement");
            broken = true;
        }
    }
    let log_ok = finish_log(log);
    if broken || !log_ok {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

fn serve_main(args: &[String]) -> ExitCode {
    let mut out = PathBuf::from("BENCH_serve.json");
    let mut metrics_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(v) => out = PathBuf::from(v),
                None => return fail("--out needs a path"),
            },
            "--metrics-out" => match it.next() {
                Some(v) => metrics_out = Some(PathBuf::from(v)),
                None => return fail("--metrics-out needs a path"),
            },
            flag if flag.starts_with('-') => {
                return fail(&format!("unknown serve flag `{flag}`"))
            }
            // Legacy positional output path.
            path => out = PathBuf::from(path),
        }
    }

    let mut log = EventLog::new(metrics_out);
    let report = measure_serve(1, &mut log)
        .into_iter()
        .next()
        .expect("one measurement round");
    let body = report.to_json();
    // Self-check: the report must stay machine-readable.
    qdgnn_obs::json::parse(&body).expect("generated report is valid JSON");
    std::fs::write(&out, &body).expect("write benchmark report");
    eprintln!("[qdgnn-bench] wrote {}", out.display());
    if finish_log(log) {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn compare_main(args: &[String]) -> ExitCode {
    let mut baseline_serve = PathBuf::from("BENCH_serve.json");
    let mut baseline_train = PathBuf::from("BENCH_train.json");
    let mut serve_rounds = 3usize;
    let mut train_rounds = 2usize;
    let mut skip_train = false;
    let mut metrics_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline-serve" => match it.next() {
                Some(v) => baseline_serve = PathBuf::from(v),
                None => return fail("--baseline-serve needs a path"),
            },
            "--baseline-train" => match it.next() {
                Some(v) => baseline_train = PathBuf::from(v),
                None => return fail("--baseline-train needs a path"),
            },
            "--serve-rounds" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => serve_rounds = n,
                _ => return fail("--serve-rounds needs a positive integer"),
            },
            "--train-rounds" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => train_rounds = n,
                _ => return fail("--train-rounds needs a positive integer"),
            },
            "--skip-train" => skip_train = true,
            "--metrics-out" => match it.next() {
                Some(v) => metrics_out = Some(PathBuf::from(v)),
                None => return fail("--metrics-out needs a path"),
            },
            flag => return fail(&format!("unknown compare flag `{flag}`")),
        }
    }

    let serve_base = match std::fs::read_to_string(&baseline_serve)
        .map_err(|e| e.to_string())
        .and_then(|t| ServeReport::from_json(&t))
    {
        Ok(b) => b,
        Err(e) => return fail(&format!("baseline {}: {e}", baseline_serve.display())),
    };
    let train_base = if skip_train {
        None
    } else {
        match std::fs::read_to_string(&baseline_train)
            .map_err(|e| e.to_string())
            .and_then(|t| TrainBenchReport::from_json(&t))
        {
            Ok(b) => Some(b),
            Err(e) => return fail(&format!("baseline {}: {e}", baseline_train.display())),
        }
    };

    let mut log = EventLog::new(metrics_out);
    let mut comparisons =
        gate::compare_serve(&serve_base, &measure_serve(serve_rounds, &mut log));
    if let Some(train_base) = &train_base {
        comparisons
            .extend(gate::compare_train(train_base, &measure_train(train_rounds, &mut log)));
    }

    println!("qdgnn-bench compare: {serve_rounds} serve round(s), {} train round(s)", if skip_train { 0 } else { train_rounds });
    for c in &comparisons {
        println!("  {}", c.line());
    }
    let verdict = gate::overall(&comparisons);
    println!(
        "overall: {} (warn > x{}, fail > x{})",
        verdict.tag(),
        gate::WARN_RATIO,
        gate::FAIL_RATIO
    );
    let log_ok = finish_log(log);
    match verdict {
        Verdict::Fail => ExitCode::FAILURE,
        _ if !log_ok => ExitCode::from(2),
        _ => ExitCode::SUCCESS,
    }
}

/// Flushes the `--metrics-out` log. Returns false on an IO error.
fn finish_log(log: EventLog) -> bool {
    match log.write() {
        Ok(Some(path)) => {
            eprintln!("[qdgnn-bench] wrote {}", path.display());
            true
        }
        Ok(None) => true,
        Err(e) => {
            eprintln!("qdgnn-bench: metrics write failed: {e}");
            false
        }
    }
}
