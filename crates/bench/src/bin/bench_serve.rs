//! `qdgnn-bench` — serving-latency benchmark with per-stage breakdown.
//!
//! Trains a bench-scale AQD-GNN per Fast-profile dataset, serves every
//! test query through [`qdgnn_core::OnlineStage`] under the obs layer,
//! and writes `BENCH_serve.json`: per-dataset p50/p95 serve latency plus
//! the encode / forward / BFS stage breakdown. The checked-in copy at
//! the repo root is the reference point for serving-perf regressions.
//!
//! ```text
//! cargo run --release -p qdgnn-bench --bin qdgnn-bench [-- OUT.json]
//! ```

use std::fmt::Write as _;

use qdgnn_bench::{bench_model_config, bench_train_config, bench_queries};
use qdgnn_core::models::AqdGnn;
use qdgnn_core::{GraphTensors, OnlineStage, Trainer};
use qdgnn_data::AttrMode;

/// Serve rounds per query: repeats tighten the histogram without
/// letting the benchmark run long.
const ROUNDS: usize = 5;

fn hist_json(out: &mut String, snap: &qdgnn_obs::metrics::MetricsSnapshot, name: &str) {
    let (p50, p95, mean) = snap
        .hist(name)
        .map(|h| (h.p50, h.p95, h.mean()))
        .unwrap_or((0.0, 0.0, 0.0));
    let _ = write!(
        out,
        "{{\"p50_us\":{},\"p95_us\":{},\"mean_us\":{}}}",
        qdgnn_obs::json::num(p50),
        qdgnn_obs::json::num(p95),
        qdgnn_obs::json::num(mean)
    );
}

fn main() {
    assert!(
        qdgnn_obs::enabled(),
        "qdgnn-bench needs the obs layer; build with default features"
    );
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_serve.json".to_string());
    let datasets = [
        qdgnn_data::presets::fb_414(),
        qdgnn_data::presets::fb_686(),
        qdgnn_data::presets::cornell(),
        qdgnn_data::presets::texas(),
    ];

    let mut body = String::from("{\n  \"bench\": \"serve\",\n  \"rounds_per_query\": ");
    let _ = write!(body, "{ROUNDS},\n  \"datasets\": {{\n");
    for (di, dataset) in datasets.iter().enumerate() {
        eprintln!("[qdgnn-bench] {}: training...", dataset.name);
        let mc = bench_model_config();
        let tensors = GraphTensors::new(&dataset.graph, mc.adj_norm, mc.fusion_graph_attr_cap);
        let split = bench_queries(dataset, AttrMode::FromCommunity, 1, 3);
        let trained = Trainer::new(bench_train_config()).train(
            AqdGnn::new(mc, tensors.d),
            &tensors,
            &split.train,
            &split.val,
        );
        // Measure serving only: drop everything training recorded.
        qdgnn_obs::reset();
        let stage = OnlineStage::new(&trained.model, &tensors, trained.gamma);
        for _ in 0..ROUNDS {
            for q in &split.test {
                let _ = stage.try_query(q).expect("bench query must be valid");
            }
        }
        let snap = qdgnn_obs::snapshot();
        let served = snap.counter("serve.queries").unwrap_or(0);
        eprintln!(
            "[qdgnn-bench] {}: served {served} queries, p50 {:.0}us p95 {:.0}us",
            dataset.name,
            snap.hist("serve.query").map(|h| h.p50).unwrap_or(0.0),
            snap.hist("serve.query").map(|h| h.p95).unwrap_or(0.0),
        );
        let _ = write!(body, "    {}: {{\n", qdgnn_obs::json::escape(&dataset.name));
        let _ = write!(body, "      \"queries_served\": {served},\n");
        for (key, metric) in [
            ("serve", "serve.query"),
            ("encode", "serve.encode"),
            ("forward", "serve.forward"),
            ("bfs", "serve.bfs"),
        ] {
            let _ = write!(body, "      \"{key}\": ");
            hist_json(&mut body, &snap, metric);
            body.push_str(",\n");
        }
        let _ = write!(
            body,
            "      \"community_size_mean\": {}\n    }}{}\n",
            qdgnn_obs::json::num(
                snap.hist("serve.community_size").map(|h| h.mean()).unwrap_or(0.0)
            ),
            if di + 1 == datasets.len() { "" } else { "," }
        );
        qdgnn_obs::reset();
    }
    body.push_str("  }\n}\n");
    // Self-check: the report must stay machine-readable.
    qdgnn_obs::json::parse(&body).expect("generated report is valid JSON");
    std::fs::write(&out_path, &body).expect("write benchmark report");
    eprintln!("[qdgnn-bench] wrote {out_path}");
}
