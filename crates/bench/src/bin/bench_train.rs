//! `qdgnn-bench-train` — training-throughput benchmark.
//!
//! Trains a bench-scale AQD-GNN from scratch per Fast-profile dataset
//! and writes `BENCH_train.json`: epochs/sec (wall clock) and the peak
//! live tensor bytes reported by the obs memory accounting. The
//! checked-in copy at the repo root is the training-perf regression
//! baseline `qdgnn-bench compare` gates against.
//!
//! ```text
//! cargo run --release -p qdgnn-bench --bin qdgnn-bench-train \
//!     [-- --out OUT.json] [--metrics-out M.jsonl]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use qdgnn_bench::measure::{measure_train, EventLog};

fn main() -> ExitCode {
    assert!(
        qdgnn_obs::enabled(),
        "qdgnn-bench-train needs the obs layer; build with default features"
    );
    let mut out = PathBuf::from("BENCH_train.json");
    let mut metrics_out = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(v) => out = PathBuf::from(v),
                None => return usage("--out needs a path"),
            },
            "--metrics-out" => match it.next() {
                Some(v) => metrics_out = Some(PathBuf::from(v)),
                None => return usage("--metrics-out needs a path"),
            },
            flag if flag.starts_with('-') => {
                return usage(&format!("unknown flag `{flag}`"))
            }
            path => out = PathBuf::from(path),
        }
    }

    let mut log = EventLog::new(metrics_out);
    let report = measure_train(1, &mut log)
        .into_iter()
        .next()
        .expect("one measurement round");
    let body = report.to_json();
    // Self-check: the report must stay machine-readable.
    qdgnn_obs::json::parse(&body).expect("generated report is valid JSON");
    std::fs::write(&out, &body).expect("write benchmark report");
    eprintln!("[qdgnn-bench-train] wrote {}", out.display());
    match log.write() {
        Ok(Some(path)) => {
            eprintln!("[qdgnn-bench-train] wrote {}", path.display());
            ExitCode::SUCCESS
        }
        Ok(None) => ExitCode::SUCCESS,
        Err(e) => usage(&format!("metrics write failed: {e}")),
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("qdgnn-bench-train: {msg}");
    ExitCode::from(2)
}
