//! Noise-tolerant benchmark regression gating.
//!
//! `qdgnn-bench compare` re-measures serving latency and training
//! throughput several times and compares the *best* round per metric
//! against the checked-in baselines: a regression is flagged only when
//! every round is bad, so one noisy round (CI neighbors, thermal
//! throttling) cannot fail the gate while a real regression — which is
//! bad in all rounds — still does. Ratios above [`WARN_RATIO`] warn,
//! above [`FAIL_RATIO`] fail the gate (nonzero exit).

use crate::report::{ServeReport, TrainBenchReport};

/// Best-round ratio above this fails the gate. The canonical constant
/// lives in `qdgnn_obs::series` so `qdgnn-obs-runs diff` and this gate
/// judge "regression" identically.
pub const FAIL_RATIO: f64 = qdgnn_obs::series::FAIL_RATIO;
/// Best-round ratio above this (but at most [`FAIL_RATIO`]) warns.
pub const WARN_RATIO: f64 = qdgnn_obs::series::WARN_RATIO;

/// Outcome of one gated metric (ordered by severity).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Within the noise band.
    Pass,
    /// Above the warn threshold; reported but not fatal.
    Warn,
    /// Above the fail threshold in every round.
    Fail,
}

impl Verdict {
    /// Short uppercase tag for report lines.
    pub fn tag(self) -> &'static str {
        match self {
            Verdict::Pass => "PASS",
            Verdict::Warn => "WARN",
            Verdict::Fail => "FAIL",
        }
    }
}

/// One gated metric: baseline, best measured round, and the verdict.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Metric label, e.g. `FB-414 serve.p95_us`.
    pub metric: String,
    /// Checked-in baseline value.
    pub baseline: f64,
    /// Best (least regressed) measured value across rounds.
    pub best: f64,
    /// Regression ratio (1.0 = at baseline, >1.0 = worse).
    pub ratio: f64,
    /// The verdict for this metric.
    pub verdict: Verdict,
}

impl Comparison {
    /// One human-readable report line.
    pub fn line(&self) -> String {
        format!(
            "{} {:<28} baseline {:>12.2}  best {:>12.2}  ratio {:.3}",
            self.verdict.tag(),
            self.metric,
            self.baseline,
            self.best,
            self.ratio
        )
    }
}

fn judge(ratio: f64) -> Verdict {
    if ratio > FAIL_RATIO {
        Verdict::Fail
    } else if ratio > WARN_RATIO {
        Verdict::Warn
    } else {
        Verdict::Pass
    }
}

/// Gates a lower-is-better metric (latency, peak bytes): the best round
/// is the minimum, and the ratio is `best / baseline`. A non-positive
/// baseline passes (nothing meaningful to compare against); an empty
/// round set fails (the metric vanished from the measurement).
pub fn judge_lower_is_better(metric: String, baseline: f64, rounds: &[f64]) -> Comparison {
    let best = rounds.iter().copied().fold(f64::INFINITY, f64::min);
    let (ratio, verdict) = if rounds.is_empty() {
        (f64::INFINITY, Verdict::Fail)
    } else if baseline <= 0.0 {
        (1.0, Verdict::Pass)
    } else {
        let r = best / baseline;
        (r, judge(r))
    };
    Comparison { metric, baseline, best, ratio, verdict }
}

/// Gates a higher-is-better metric (throughput): the best round is the
/// maximum, and the ratio is `baseline / best`. A non-positive baseline
/// passes; an empty round set or a non-positive best fails.
pub fn judge_higher_is_better(metric: String, baseline: f64, rounds: &[f64]) -> Comparison {
    let best = rounds.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let (ratio, verdict) = if rounds.is_empty() {
        (f64::INFINITY, Verdict::Fail)
    } else if baseline <= 0.0 {
        (1.0, Verdict::Pass)
    } else if best <= 0.0 {
        (f64::INFINITY, Verdict::Fail)
    } else {
        let r = baseline / best;
        (r, judge(r))
    };
    Comparison { metric, baseline, best, ratio, verdict }
}

/// Gates every baseline dataset's serve p95 (lower is better) and
/// batched serving throughput (higher is better) against the measured
/// rounds.
pub fn compare_serve(baseline: &ServeReport, rounds: &[ServeReport]) -> Vec<Comparison> {
    let mut out = Vec::new();
    for (name, base) in &baseline.datasets {
        let p95s: Vec<f64> =
            rounds.iter().filter_map(|r| r.get(name)).map(|d| d.serve.p95_us).collect();
        out.push(judge_lower_is_better(format!("{name} serve.p95_us"), base.serve.p95_us, &p95s));
        let qps: Vec<f64> = rounds
            .iter()
            .filter_map(|r| r.get(name))
            .map(|d| d.throughput.batched_qps)
            .collect();
        out.push(judge_higher_is_better(
            format!("{name} serve.batched_qps"),
            base.throughput.batched_qps,
            &qps,
        ));
    }
    // The overload-degradation scenario contributes two gates: the p99
    // of *accepted* requests (overload must not wreck survivors) and
    // the shed rate (deadline shedding must not creep up). Both are
    // lower-is-better with the usual noise-tolerant best-of-rounds.
    let o = &baseline.overload;
    let p99s: Vec<f64> = rounds.iter().map(|r| r.overload.p99_accepted_us).collect();
    out.push(judge_lower_is_better(
        format!("{} overload.p99_accepted_us", o.dataset),
        o.p99_accepted_us,
        &p99s,
    ));
    let shed: Vec<f64> = rounds.iter().map(|r| r.overload.shed_rate).collect();
    out.push(judge_lower_is_better(
        format!("{} overload.shed_rate", o.dataset),
        o.shed_rate,
        &shed,
    ));
    out
}

/// Gates every baseline dataset's training throughput and peak live
/// bytes against the measured rounds.
pub fn compare_train(baseline: &TrainBenchReport, rounds: &[TrainBenchReport]) -> Vec<Comparison> {
    let mut out = Vec::new();
    for (name, base) in &baseline.datasets {
        let eps: Vec<f64> =
            rounds.iter().filter_map(|r| r.get(name)).map(|d| d.epochs_per_sec).collect();
        out.push(judge_higher_is_better(
            format!("{name} train.epochs_per_sec"),
            base.epochs_per_sec,
            &eps,
        ));
        let peaks: Vec<f64> =
            rounds.iter().filter_map(|r| r.get(name)).map(|d| d.peak_live_bytes as f64).collect();
        out.push(judge_lower_is_better(
            format!("{name} train.peak_live_bytes"),
            base.peak_live_bytes as f64,
            &peaks,
        ));
    }
    out
}

/// Worst verdict across all gated metrics (`Pass` when empty).
pub fn overall(comparisons: &[Comparison]) -> Verdict {
    comparisons.iter().map(|c| c.verdict).max().unwrap_or(Verdict::Pass)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::{Path, PathBuf};

    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
    }

    #[test]
    fn best_round_tolerates_one_noisy_round() {
        let c = judge_lower_is_better("m".into(), 100.0, &[180.0, 104.0, 131.0]);
        assert_eq!(c.verdict, Verdict::Pass, "{c:?}");
        assert!((c.best - 104.0).abs() < 1e-12);
        let c = judge_lower_is_better("m".into(), 100.0, &[180.0, 140.0, 131.0]);
        assert_eq!(c.verdict, Verdict::Fail, "all rounds above ×1.25 must fail");
        let c = judge_lower_is_better("m".into(), 100.0, &[118.0, 140.0]);
        assert_eq!(c.verdict, Verdict::Warn, "warn band is (×1.10, ×1.25]");
    }

    #[test]
    fn throughput_ratio_is_inverted() {
        let c = judge_higher_is_better("eps".into(), 10.0, &[9.5, 4.0]);
        assert_eq!(c.verdict, Verdict::Pass, "{c:?}");
        let c = judge_higher_is_better("eps".into(), 10.0, &[7.0, 6.0]);
        assert_eq!(c.verdict, Verdict::Fail);
        let c = judge_higher_is_better("eps".into(), 10.0, &[0.0]);
        assert_eq!(c.verdict, Verdict::Fail, "zero throughput is a broken run");
    }

    #[test]
    fn degenerate_baselines_pass_missing_metrics_fail() {
        assert_eq!(judge_lower_is_better("m".into(), 0.0, &[5.0]).verdict, Verdict::Pass);
        assert_eq!(judge_higher_is_better("m".into(), 0.0, &[5.0]).verdict, Verdict::Pass);
        assert_eq!(judge_lower_is_better("m".into(), 5.0, &[]).verdict, Verdict::Fail);
        assert_eq!(overall(&[]), Verdict::Pass);
    }

    /// The acceptance contract: the checked-in serve baseline gates a
    /// re-measurement of itself as PASS, and the same measurement fails
    /// against a baseline whose p95 budget is scaled down ×4.
    #[test]
    fn checked_in_serve_baseline_gates_itself_and_fails_scaled() {
        let text = std::fs::read_to_string(repo_root().join("BENCH_serve.json"))
            .expect("checked-in BENCH_serve.json");
        let baseline = ServeReport::from_json(&text).expect("baseline parses");
        assert!(!baseline.datasets.is_empty());

        let comps = compare_serve(&baseline, std::slice::from_ref(&baseline));
        assert_eq!(
            comps.len(),
            2 * baseline.datasets.len() + 2,
            "p95 + batched QPS per dataset, plus the two overload gates"
        );
        assert_eq!(overall(&comps), Verdict::Pass, "{comps:?}");
        assert!(
            baseline.overload.shed_rate > 0.0 && baseline.overload.shed_rate < 0.8,
            "overload baseline must shed some but not most load, or the \
             ×{FAIL_RATIO} shed-rate gate is vacuous: {:?}",
            baseline.overload
        );

        let mut scaled = baseline.clone();
        for (_, d) in &mut scaled.datasets {
            // A ×4 tighter latency budget and a ×4 higher throughput
            // floor: the unchanged measurement must fail both gates.
            d.serve.p95_us /= 4.0;
            d.throughput.batched_qps *= 4.0;
        }
        // Same for the overload scenario's two gated metrics.
        scaled.overload.p99_accepted_us /= 4.0;
        scaled.overload.shed_rate /= 4.0;
        let comps = compare_serve(&scaled, std::slice::from_ref(&baseline));
        assert!(
            comps.iter().all(|c| c.verdict == Verdict::Fail),
            "×4 over a scaled-down baseline must fail every metric: {comps:?}"
        );
        assert_eq!(overall(&comps), Verdict::Fail);
    }

    /// Same contract for the checked-in training baseline.
    #[test]
    fn checked_in_train_baseline_gates_itself_and_fails_scaled() {
        let text = std::fs::read_to_string(repo_root().join("BENCH_train.json"))
            .expect("checked-in BENCH_train.json");
        let baseline = TrainBenchReport::from_json(&text).expect("baseline parses");
        assert!(!baseline.datasets.is_empty());

        let comps = compare_train(&baseline, std::slice::from_ref(&baseline));
        assert_eq!(overall(&comps), Verdict::Pass, "{comps:?}");

        let mut scaled = baseline.clone();
        for (_, d) in &mut scaled.datasets {
            d.epochs_per_sec *= 4.0;
        }
        let comps = compare_train(&scaled, std::slice::from_ref(&baseline));
        assert!(
            comps.iter().any(|c| c.verdict == Verdict::Fail),
            "×4 throughput shortfall must fail: {comps:?}"
        );
    }
}
