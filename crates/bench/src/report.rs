//! The checked-in benchmark report schema (`BENCH_serve.json`,
//! `BENCH_train.json`).
//!
//! Both reports are small hand-rolled JSON documents (this workspace has
//! no serde): the serve report carries per-dataset latency histograms
//! with the encode / forward / BFS stage breakdown, the train report
//! carries training throughput and the peak live tensor bytes observed
//! by the obs memory accounting. `qdgnn-bench compare` parses the
//! checked-in copies as regression baselines (see [`crate::gate`]).

use std::fmt::Write as _;

use qdgnn_obs::json::{self, Value};

/// p50/p95/mean of one latency histogram, in microseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct HistStats {
    /// Median latency.
    pub p50_us: f64,
    /// 95th-percentile latency.
    pub p95_us: f64,
    /// Mean latency.
    pub mean_us: f64,
}

/// Sequential-vs-batched serving throughput for one dataset.
///
/// Both numbers come from the same workload on the same stage: the
/// sequential pass calls `try_query` once per query, the batched pass
/// calls `try_query_batch` in chunks of `batch_size` (bit-identical
/// scores — the measurement asserts it inline before timing).
#[derive(Clone, Copy, Debug, Default)]
pub struct ThroughputStats {
    /// Chunk size of the batched pass.
    pub batch_size: u64,
    /// One-query-at-a-time throughput, queries/second.
    pub sequential_qps: f64,
    /// Batched throughput, queries/second.
    pub batched_qps: f64,
}

impl ThroughputStats {
    /// Batched-over-sequential speedup (0 when sequential is degenerate).
    pub fn speedup(&self) -> f64 {
        if self.sequential_qps > 0.0 {
            self.batched_qps / self.sequential_qps
        } else {
            0.0
        }
    }
}

/// One dataset's serving measurement.
#[derive(Clone, Debug, Default)]
pub struct ServeDataset {
    /// Queries served (test queries × rounds per query).
    pub queries_served: u64,
    /// End-to-end `serve.query` latency.
    pub serve: HistStats,
    /// `serve.encode` stage latency.
    pub encode: HistStats,
    /// `serve.forward` stage latency.
    pub forward: HistStats,
    /// `serve.bfs` stage latency.
    pub bfs: HistStats,
    /// Mean returned community size.
    pub community_size_mean: f64,
    /// Sequential-vs-batched throughput.
    pub throughput: ThroughputStats,
}

/// The overload scenario: offered load beyond engine capacity with
/// per-request deadlines armed, measuring how gracefully the engine
/// degrades. Two gated metrics come out of it: the p99 latency of
/// *accepted* requests (overload must not wreck survivors) and the shed
/// rate (how much load the deadline tiers turned away).
#[derive(Clone, Debug, Default)]
pub struct OverloadStats {
    /// Dataset the scenario ran against.
    pub dataset: String,
    /// Per-request deadline budget armed during the scenario (µs).
    pub deadline_us: u64,
    /// Requests offered by the load generators.
    pub offered: u64,
    /// Requests answered with a community (accepted and served).
    pub accepted: u64,
    /// Requests shed with `DeadlineExceeded` (admission tier + dequeue
    /// tier) or rejected by queue backpressure.
    pub shed: u64,
    /// Engine-side admission-tier sheds (`EngineStats::shed_admission`);
    /// the tier breakdown must agree with the per-outcome labeled
    /// metrics the engine exports.
    pub shed_admission: u64,
    /// Engine-side dequeue-tier sheds (`EngineStats::shed_deadline`).
    pub shed_deadline: u64,
    /// Worker panics absorbed during the scenario
    /// (`EngineStats::worker_panics`) — expected 0; a nonzero count
    /// means accepted/shed arithmetic excludes panicked requests.
    pub worker_panics: u64,
    /// 99th-percentile latency of accepted requests, microseconds.
    pub p99_accepted_us: f64,
    /// `shed / offered` — fraction of offered load turned away.
    pub shed_rate: f64,
}

/// The `BENCH_serve.json` document.
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    /// Serve repetitions per query inside one measurement.
    pub rounds_per_query: u64,
    /// Per-dataset measurements, in measurement order.
    pub datasets: Vec<(String, ServeDataset)>,
    /// The overload-degradation scenario (one per report).
    pub overload: OverloadStats,
}

/// One dataset's training measurement.
#[derive(Clone, Debug, Default)]
pub struct TrainDataset {
    /// Epochs the trainer ran.
    pub epochs: u64,
    /// Training throughput (epochs per wall-clock second).
    pub epochs_per_sec: f64,
    /// Peak live tensor bytes during training (obs memory accounting).
    pub peak_live_bytes: u64,
}

/// The `BENCH_train.json` document.
#[derive(Clone, Debug, Default)]
pub struct TrainBenchReport {
    /// Per-dataset measurements, in measurement order.
    pub datasets: Vec<(String, TrainDataset)>,
}

fn hist_json(out: &mut String, h: &HistStats) {
    let _ = write!(
        out,
        "{{\"p50_us\":{},\"p95_us\":{},\"mean_us\":{}}}",
        json::num(h.p50_us),
        json::num(h.p95_us),
        json::num(h.mean_us)
    );
}

fn req_num(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key).and_then(Value::as_num).ok_or_else(|| format!("missing numeric `{key}`"))
}

fn hist_from(v: &Value, key: &str) -> Result<HistStats, String> {
    let h = v.get(key).ok_or_else(|| format!("missing `{key}` histogram"))?;
    Ok(HistStats {
        p50_us: req_num(h, "p50_us")?,
        p95_us: req_num(h, "p95_us")?,
        mean_us: req_num(h, "mean_us")?,
    })
}

fn throughput_from(v: &Value) -> Result<ThroughputStats, String> {
    let t = v.get("throughput").ok_or("missing `throughput` object")?;
    Ok(ThroughputStats {
        batch_size: req_num(t, "batch_size")? as u64,
        sequential_qps: req_num(t, "sequential_qps")?,
        batched_qps: req_num(t, "batched_qps")?,
    })
}

fn overload_from(v: &Value) -> Result<OverloadStats, String> {
    // Required: a baseline without the overload scenario predates the
    // degradation gate and must be regenerated, not silently accepted.
    let o = v.get("overload").ok_or("missing `overload` object")?;
    Ok(OverloadStats {
        dataset: o
            .get("dataset")
            .and_then(Value::as_str)
            .ok_or("missing string `dataset` in `overload`")?
            .to_string(),
        deadline_us: req_num(o, "deadline_us")? as u64,
        offered: req_num(o, "offered")? as u64,
        accepted: req_num(o, "accepted")? as u64,
        shed: req_num(o, "shed")? as u64,
        shed_admission: req_num(o, "shed_admission")? as u64,
        shed_deadline: req_num(o, "shed_deadline")? as u64,
        worker_panics: req_num(o, "worker_panics")? as u64,
        p99_accepted_us: req_num(o, "p99_accepted_us")?,
        shed_rate: req_num(o, "shed_rate")?,
    })
}

fn check_bench_kind(v: &Value, expected: &str) -> Result<(), String> {
    match v.get("bench").and_then(Value::as_str) {
        Some(k) if k == expected => Ok(()),
        Some(k) => Err(format!("expected `\"bench\": \"{expected}\"`, found `{k}`")),
        None => Err("missing string `bench`".into()),
    }
}

impl ServeReport {
    /// Looks up one dataset's measurement by name.
    pub fn get(&self, name: &str) -> Option<&ServeDataset> {
        self.datasets.iter().find(|(n, _)| n == name).map(|(_, d)| d)
    }

    /// Serializes to the checked-in `BENCH_serve.json` format.
    pub fn to_json(&self) -> String {
        let mut body = String::from("{\n  \"bench\": \"serve\",\n  \"rounds_per_query\": ");
        let _ = writeln!(body, "{},\n  \"datasets\": {{", self.rounds_per_query);
        for (i, (name, d)) in self.datasets.iter().enumerate() {
            let _ = writeln!(body, "    {}: {{", json::escape(name));
            let _ = writeln!(body, "      \"queries_served\": {},", d.queries_served);
            for (key, h) in
                [("serve", &d.serve), ("encode", &d.encode), ("forward", &d.forward), ("bfs", &d.bfs)]
            {
                let _ = write!(body, "      \"{key}\": ");
                hist_json(&mut body, h);
                body.push_str(",\n");
            }
            let _ = writeln!(
                body,
                "      \"community_size_mean\": {},",
                json::num(d.community_size_mean)
            );
            let _ = write!(
                body,
                "      \"throughput\": {{\"batch_size\":{},\"sequential_qps\":{},\"batched_qps\":{}}}\n    }}{}\n",
                d.throughput.batch_size,
                json::num(d.throughput.sequential_qps),
                json::num(d.throughput.batched_qps),
                if i + 1 == self.datasets.len() { "" } else { "," }
            );
        }
        body.push_str("  },\n");
        let o = &self.overload;
        let _ = writeln!(
            body,
            "  \"overload\": {{\"dataset\":{},\"deadline_us\":{},\"offered\":{},\"accepted\":{},\"shed\":{},\"shed_admission\":{},\"shed_deadline\":{},\"worker_panics\":{},\"p99_accepted_us\":{},\"shed_rate\":{}}}",
            json::escape(&o.dataset),
            o.deadline_us,
            o.offered,
            o.accepted,
            o.shed,
            o.shed_admission,
            o.shed_deadline,
            o.worker_panics,
            json::num(o.p99_accepted_us),
            json::num(o.shed_rate),
        );
        body.push_str("}\n");
        body
    }

    /// Parses a `BENCH_serve.json` document. Dataset order is normalized
    /// to sorted (the underlying parser uses a sorted map).
    pub fn from_json(text: &str) -> Result<ServeReport, String> {
        let v = json::parse(text)?;
        check_bench_kind(&v, "serve")?;
        let mut report = ServeReport {
            rounds_per_query: req_num(&v, "rounds_per_query")? as u64,
            datasets: Vec::new(),
            overload: overload_from(&v)?,
        };
        let datasets =
            v.get("datasets").and_then(Value::as_obj).ok_or("missing `datasets` object")?;
        for (name, d) in datasets {
            report.datasets.push((
                name.clone(),
                ServeDataset {
                    queries_served: req_num(d, "queries_served")? as u64,
                    serve: hist_from(d, "serve")?,
                    encode: hist_from(d, "encode")?,
                    forward: hist_from(d, "forward")?,
                    bfs: hist_from(d, "bfs")?,
                    community_size_mean: req_num(d, "community_size_mean")?,
                    throughput: throughput_from(d)?,
                },
            ));
        }
        Ok(report)
    }
}

impl TrainBenchReport {
    /// Looks up one dataset's measurement by name.
    pub fn get(&self, name: &str) -> Option<&TrainDataset> {
        self.datasets.iter().find(|(n, _)| n == name).map(|(_, d)| d)
    }

    /// Serializes to the checked-in `BENCH_train.json` format.
    pub fn to_json(&self) -> String {
        let mut body = String::from("{\n  \"bench\": \"train\",\n  \"datasets\": {\n");
        for (i, (name, d)) in self.datasets.iter().enumerate() {
            let _ = writeln!(body, "    {}: {{", json::escape(name));
            let _ = writeln!(body, "      \"epochs\": {},", d.epochs);
            let _ = writeln!(body, "      \"epochs_per_sec\": {},", json::num(d.epochs_per_sec));
            let _ = write!(
                body,
                "      \"peak_live_bytes\": {}\n    }}{}\n",
                d.peak_live_bytes,
                if i + 1 == self.datasets.len() { "" } else { "," }
            );
        }
        body.push_str("  }\n}\n");
        body
    }

    /// Parses a `BENCH_train.json` document.
    pub fn from_json(text: &str) -> Result<TrainBenchReport, String> {
        let v = json::parse(text)?;
        check_bench_kind(&v, "train")?;
        let mut report = TrainBenchReport::default();
        let datasets =
            v.get("datasets").and_then(Value::as_obj).ok_or("missing `datasets` object")?;
        for (name, d) in datasets {
            report.datasets.push((
                name.clone(),
                TrainDataset {
                    epochs: req_num(d, "epochs")? as u64,
                    epochs_per_sec: req_num(d, "epochs_per_sec")?,
                    peak_live_bytes: req_num(d, "peak_live_bytes")? as u64,
                },
            ));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_serve() -> ServeReport {
        ServeReport {
            rounds_per_query: 5,
            datasets: vec![(
                "FB-414".to_string(),
                ServeDataset {
                    queries_served: 75,
                    serve: HistStats { p50_us: 771.5, p95_us: 1004.0, mean_us: 801.25 },
                    encode: HistStats { p50_us: 0.5, p95_us: 0.9, mean_us: 0.5 },
                    forward: HistStats { p50_us: 770.0, p95_us: 1000.0, mean_us: 790.0 },
                    bfs: HistStats { p50_us: 7.0, p95_us: 15.0, mean_us: 8.75 },
                    community_size_mean: 30.5,
                    throughput: ThroughputStats {
                        batch_size: 16,
                        sequential_qps: 1800.0,
                        batched_qps: 3600.0,
                    },
                },
            )],
            overload: OverloadStats {
                dataset: "FB-414".to_string(),
                deadline_us: 20_000,
                offered: 256,
                accepted: 131,
                shed: 125,
                shed_admission: 88,
                shed_deadline: 37,
                worker_panics: 0,
                p99_accepted_us: 9500.0,
                shed_rate: 0.488,
            },
        }
    }

    #[test]
    fn serve_report_round_trips() {
        let report = sample_serve();
        let text = report.to_json();
        json::parse(&text).expect("valid JSON");
        let back = ServeReport::from_json(&text).unwrap();
        assert_eq!(back.rounds_per_query, 5);
        let d = back.get("FB-414").expect("dataset survives");
        assert_eq!(d.queries_served, 75);
        assert!((d.serve.p95_us - 1004.0).abs() < 1e-9);
        assert!((d.bfs.mean_us - 8.75).abs() < 1e-9);
        assert_eq!(d.throughput.batch_size, 16);
        assert!((d.throughput.sequential_qps - 1800.0).abs() < 1e-9);
        assert!((d.throughput.batched_qps - 3600.0).abs() < 1e-9);
        assert!((d.throughput.speedup() - 2.0).abs() < 1e-12);
        assert!(back.get("nope").is_none());
        assert_eq!(back.overload.dataset, "FB-414");
        assert_eq!(back.overload.offered, 256);
        assert_eq!(back.overload.accepted, 131);
        assert_eq!(back.overload.shed, 125);
        assert_eq!(back.overload.shed_admission, 88);
        assert_eq!(back.overload.shed_deadline, 37);
        assert_eq!(back.overload.worker_panics, 0);
        assert!((back.overload.p99_accepted_us - 9500.0).abs() < 1e-9);
        assert!((back.overload.shed_rate - 0.488).abs() < 1e-9);
    }

    #[test]
    fn serve_parser_requires_the_shed_tier_breakdown() {
        // A baseline predating the per-outcome telemetry must be
        // regenerated, not silently accepted with a zeroed breakdown.
        let text = sample_serve().to_json();
        for field in ["\"shed_admission\":88,", "\"shed_deadline\":37,", "\"worker_panics\":0,"] {
            assert!(text.contains(field), "sanity: {field} emitted");
            assert!(ServeReport::from_json(&text.replace(field, "")).is_err());
        }
    }

    #[test]
    fn serve_parser_requires_the_overload_section() {
        // A pre-overload report (old schema) must be rejected, so the
        // checked-in baseline can never silently skip the shedding gate.
        let report = sample_serve();
        let text = report.to_json();
        let start = text.find("  \"overload\"").expect("overload section emitted");
        let end = text[start..].find('\n').map(|i| start + i + 1).expect("line-terminated");
        let stripped = format!("{}{}", text[..start].trim_end_matches(",\n"), "\n}\n");
        assert!(text[start..end].contains("shed_rate"), "sanity: stripping the right line");
        assert!(ServeReport::from_json(&stripped).is_err());
    }

    #[test]
    fn serve_parser_requires_the_throughput_section() {
        // A pre-throughput report (old schema) must be rejected, so the
        // checked-in baseline can never silently skip the QPS gate.
        let mut report = sample_serve();
        report.datasets[0].1.throughput = ThroughputStats::default();
        let text = report.to_json().replace(
            "\"throughput\": {\"batch_size\":0,\"sequential_qps\":0,\"batched_qps\":0}",
            "\"throughput\": {\"batch_size\":0}",
        );
        assert!(ServeReport::from_json(&text).is_err());
    }

    #[test]
    fn train_report_round_trips() {
        let report = TrainBenchReport {
            datasets: vec![(
                "Cornell".to_string(),
                TrainDataset { epochs: 12, epochs_per_sec: 3.75, peak_live_bytes: 123456 },
            )],
        };
        let text = report.to_json();
        json::parse(&text).expect("valid JSON");
        let back = TrainBenchReport::from_json(&text).unwrap();
        let d = back.get("Cornell").unwrap();
        assert_eq!(d.epochs, 12);
        assert!((d.epochs_per_sec - 3.75).abs() < 1e-12);
        assert_eq!(d.peak_live_bytes, 123456);
    }

    #[test]
    fn parser_rejects_wrong_kind_and_missing_fields() {
        let serve = sample_serve().to_json();
        assert!(TrainBenchReport::from_json(&serve).is_err(), "kind mismatch must fail");
        assert!(ServeReport::from_json("{}").is_err());
        assert!(ServeReport::from_json("{\"bench\":\"serve\"}").is_err());
        let no_hist = r#"{"bench":"serve","rounds_per_query":5,"datasets":{"X":{"queries_served":1}}}"#;
        assert!(ServeReport::from_json(no_hist).is_err());
    }
}
