//! Shared measurement driving for the `qdgnn-bench` binaries.
//!
//! Both the one-shot report writers (`qdgnn-bench serve`,
//! `qdgnn-bench-train`) and the regression gate (`qdgnn-bench compare`)
//! run the same measurement loops; the gate just asks for several
//! rounds. Expensive setup (dataset load, model training for the serve
//! bench) happens once per dataset and is shared across rounds, so a
//! 3-round compare costs far less than three full bench runs.

use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qdgnn_core::models::AqdGnn;
use qdgnn_core::{CsModel, GraphTensors, OnlineStage, Trainer};
use qdgnn_data::{AttrMode, Dataset, Query};
use qdgnn_obs::events::Event;
use qdgnn_obs::metrics::MetricsSnapshot;
use qdgnn_serve::{ServeConfig, ServeEngine};

use crate::report::{
    HistStats, OverloadStats, ServeDataset, ServeReport, ThroughputStats, TrainBenchReport,
    TrainDataset,
};
use crate::{bench_model_config, bench_queries, bench_train_config};

/// Serve repetitions per query inside one measurement round.
pub const SERVE_ROUNDS_PER_QUERY: usize = 5;

/// Chunk size of the batched throughput measurement.
pub const THROUGHPUT_BATCH: usize = 16;

/// Workload size (queries) of each throughput timing pass.
pub const THROUGHPUT_QUERIES: usize = 48;

/// Batch cap of the overload-scenario engine.
pub const OVERLOAD_BATCH: usize = 8;

/// Deadline budget of the overload scenario, in units of calibrated
/// per-batch service time: a request may wait three full batches.
pub const OVERLOAD_DEADLINE_BATCHES: f64 = 3.0;

/// Closed-loop clients driving the overload engine. The deadline can
/// sustain [`OVERLOAD_DEADLINE_BATCHES`]·[`OVERLOAD_BATCH`] outstanding
/// requests (both deadline and service time scale with 1/μ, so this is
/// machine-independent); twice that is a 2× overload, targeting a shed
/// rate near one half.
pub const OVERLOAD_CLIENTS: usize = 6 * OVERLOAD_BATCH;

/// Closed-loop submit cycles each overload client runs.
pub const OVERLOAD_CYCLES_PER_CLIENT: usize = 40;

/// The bench dataset suite (Fast-profile scale).
pub fn bench_datasets() -> Vec<Dataset> {
    vec![
        qdgnn_data::presets::fb_414(),
        qdgnn_data::presets::fb_686(),
        qdgnn_data::presets::cornell(),
        qdgnn_data::presets::texas(),
    ]
}

/// `--metrics-out` accumulator that survives the per-phase registry
/// resets the measurements need: events are drained into this buffer
/// before every reset, and [`EventLog::write`] emits them followed by
/// one final snapshot line — the JSONL shape `qdgnn-obs-validate`
/// checks. With no path configured every method is a no-op.
pub struct EventLog {
    path: Option<PathBuf>,
    events: Vec<Event>,
}

impl EventLog {
    /// Starts the log; event buffering turns on only when `path` is set.
    pub fn new(path: Option<PathBuf>) -> Self {
        if path.is_some() {
            qdgnn_obs::record_events(true);
        }
        EventLog { path, events: Vec::new() }
    }

    /// Drains buffered registry events, resets the registry, and re-arms
    /// event buffering (a plain `qdgnn_obs::reset()` turns it off).
    pub fn reset(&mut self) {
        if self.path.is_some() {
            self.events.extend(qdgnn_obs::take_events());
        }
        qdgnn_obs::reset();
        if self.path.is_some() {
            qdgnn_obs::record_events(true);
        }
    }

    /// Writes the accumulated event stream plus one final snapshot line.
    /// No-op (Ok) when no path was configured.
    pub fn write(mut self) -> io::Result<Option<PathBuf>> {
        let Some(path) = self.path.take() else { return Ok(None) };
        self.events.extend(qdgnn_obs::take_events());
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out.push_str(&qdgnn_obs::snapshot().to_json());
        out.push('\n');
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(&path, out)?;
        Ok(Some(path))
    }
}

fn hist_stats(snap: &MetricsSnapshot, name: &str) -> HistStats {
    snap.hist(name)
        .map(|h| HistStats { p50_us: h.p50, p95_us: h.p95, mean_us: h.mean() })
        .unwrap_or_default()
}

/// Runs the serving benchmark `measure_rounds` times, returning one
/// [`ServeReport`] per round. Training happens once per dataset; each
/// round then serves every test query [`SERVE_ROUNDS_PER_QUERY`] times
/// against a freshly reset registry.
pub fn measure_serve(measure_rounds: usize, log: &mut EventLog) -> Vec<ServeReport> {
    let mut rounds = measure_serve_on(&bench_datasets(), measure_rounds, log);
    for (round, overload) in rounds.iter_mut().zip(measure_overload(measure_rounds, log)) {
        round.overload = overload;
    }
    rounds
}

/// [`measure_serve`] over an explicit dataset list (the
/// `serve-throughput` smoke runs a small subset).
pub fn measure_serve_on(
    datasets: &[Dataset],
    measure_rounds: usize,
    log: &mut EventLog,
) -> Vec<ServeReport> {
    let mut rounds: Vec<ServeReport> = (0..measure_rounds)
        .map(|_| ServeReport {
            rounds_per_query: SERVE_ROUNDS_PER_QUERY as u64,
            datasets: Vec::new(),
            overload: OverloadStats::default(),
        })
        .collect();
    for dataset in datasets {
        eprintln!("[qdgnn-bench] {}: training...", dataset.name);
        let mc = bench_model_config();
        let tensors = GraphTensors::new(&dataset.graph, mc.adj_norm, mc.fusion_graph_attr_cap);
        let split = bench_queries(dataset, AttrMode::FromCommunity, 1, 3);
        let trained = Trainer::new(bench_train_config()).train(
            AqdGnn::new(mc, tensors.d),
            &tensors,
            &split.train,
            &split.val,
        );
        // Measure serving only: drop everything training recorded.
        log.reset();
        let stage = OnlineStage::new(&trained.model, &tensors, trained.gamma);
        for round in rounds.iter_mut() {
            for _ in 0..SERVE_ROUNDS_PER_QUERY {
                for q in &split.test {
                    let _ = stage.try_query(q).expect("bench query must be valid");
                }
            }
            let snap = qdgnn_obs::snapshot();
            // Throughput runs after the latency snapshot so its extra
            // queries never pollute the latency histograms above.
            let throughput = measure_throughput(&stage, &split.test);
            eprintln!(
                "[qdgnn-bench] {}: served {} queries, p50 {:.0}us p95 {:.0}us, {:.0} seq qps vs {:.0} batched qps (x{:.2})",
                dataset.name,
                snap.counter("serve.queries").unwrap_or(0),
                snap.hist("serve.query").map(|h| h.p50).unwrap_or(0.0),
                snap.hist("serve.query").map(|h| h.p95).unwrap_or(0.0),
                throughput.sequential_qps,
                throughput.batched_qps,
                throughput.speedup(),
            );
            round.datasets.push((
                dataset.name.clone(),
                ServeDataset {
                    queries_served: snap.counter("serve.queries").unwrap_or(0),
                    serve: hist_stats(&snap, "serve.query"),
                    encode: hist_stats(&snap, "serve.encode"),
                    forward: hist_stats(&snap, "serve.forward"),
                    bfs: hist_stats(&snap, "serve.bfs"),
                    community_size_mean: snap
                        .hist("serve.community_size")
                        .map(|h| h.mean())
                        .unwrap_or(0.0),
                    throughput,
                },
            ));
            log.reset();
        }
    }
    rounds
}

/// Runs the overload-degradation scenario `measure_rounds` times: a
/// `ServeEngine` over a bench-trained Cornell model, per-request
/// deadlines armed, driven by closed-loop clients deliberately
/// provisioned at 2× the concurrency the deadline can sustain, so a
/// predictable fraction of offered load must be shed. Two gated metrics
/// come out: the p99 latency of *accepted* requests (graceful
/// degradation means survivors stay inside roughly deadline + one batch)
/// and the shed rate.
///
/// The deadline is calibrated from a measured batched-throughput pass
/// ([`OVERLOAD_DEADLINE_BATCHES`] batches of service time), so the
/// overload *factor* — and with it the expected shed rate — is
/// machine-independent even though raw throughput is not.
pub fn measure_overload(measure_rounds: usize, log: &mut EventLog) -> Vec<OverloadStats> {
    let dataset = qdgnn_data::presets::cornell();
    eprintln!("[qdgnn-bench] {}: training for the overload scenario...", dataset.name);
    let mc = bench_model_config();
    let tensors =
        Arc::new(GraphTensors::new(&dataset.graph, mc.adj_norm, mc.fusion_graph_attr_cap));
    let split = bench_queries(&dataset, AttrMode::FromCommunity, 1, 3);
    let trained = Trainer::new(bench_train_config()).train(
        AqdGnn::new(mc, tensors.d),
        &tensors,
        &split.train,
        &split.val,
    );
    let model: Arc<dyn CsModel> = Arc::new(trained.model);
    let gamma = trained.gamma;
    log.reset();

    // Calibrate service capacity μ (batched queries/second), then set
    // the deadline to OVERLOAD_DEADLINE_BATCHES batches of service
    // time. With OVERLOAD_CLIENTS at twice the outstanding requests
    // that deadline can sustain, closed-loop queue wait settles around
    // 2×deadline and roughly half the offered load must be shed —
    // regardless of how fast this machine is.
    let calib = OnlineStage::new_shared(Arc::clone(&model), Arc::clone(&tensors), gamma);
    let workload: Vec<Query> =
        split.test.iter().cycle().take(THROUGHPUT_QUERIES).cloned().collect();
    assert!(!workload.is_empty(), "overload scenario needs test queries");
    let t0 = Instant::now();
    for chunk in workload.chunks(OVERLOAD_BATCH) {
        for r in calib.try_query_batch(chunk) {
            let _ = r.expect("bench query must be valid");
        }
    }
    let mu = (workload.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9)).max(1.0);
    let deadline_us = ((OVERLOAD_DEADLINE_BATCHES * OVERLOAD_BATCH as f64 / mu) * 1e6)
        .round()
        .max(1_000.0) as u64;
    let clients = OVERLOAD_CLIENTS;
    eprintln!(
        "[qdgnn-bench] {}: overload calibration {:.0} qps -> {deadline_us}us deadline, {clients} closed-loop clients",
        dataset.name, mu
    );

    (0..measure_rounds)
        .map(|_| {
            let stage = OnlineStage::new_shared(Arc::clone(&model), Arc::clone(&tensors), gamma);
            let engine = Arc::new(
                ServeEngine::new(
                    stage,
                    ServeConfig {
                        max_batch: OVERLOAD_BATCH,
                        max_wait_us: 200,
                        queue_capacity: 2 * clients,
                        workers: 1,
                        deadline_us,
                        ..ServeConfig::default()
                    },
                )
                .expect("overload engine must start"),
            );
            let handles: Vec<_> = (0..clients)
                .map(|ci| {
                    let engine = Arc::clone(&engine);
                    let queries = split.test.clone();
                    std::thread::spawn(move || {
                        let (mut offered, mut accepted, mut shed) = (0u64, 0u64, 0u64);
                        let mut latencies_us: Vec<f64> = Vec::new();
                        for i in 0..OVERLOAD_CYCLES_PER_CLIENT {
                            let q = queries[(ci + i * 7) % queries.len()].clone();
                            offered += 1;
                            let t = Instant::now();
                            let outcome = engine.submit(q).and_then(|p| p.wait());
                            match outcome {
                                Ok(_) => {
                                    accepted += 1;
                                    latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
                                }
                                Err(_) => {
                                    shed += 1;
                                    // Shed replies return fast (admission
                                    // tier is immediate); back off one
                                    // deadline so a rejected client does
                                    // not hot-loop and distort the
                                    // offered/shed ratio.
                                    std::thread::sleep(Duration::from_micros(deadline_us));
                                }
                            }
                        }
                        (offered, accepted, shed, latencies_us)
                    })
                })
                .collect();
            let (mut offered, mut accepted, mut shed) = (0u64, 0u64, 0u64);
            let mut latencies_us: Vec<f64> = Vec::new();
            for h in handles {
                let (o, a, s, lat) = h.join().expect("overload client must not panic");
                offered += o;
                accepted += a;
                shed += s;
                latencies_us.extend(lat);
            }
            engine.shutdown();
            let engine_stats = engine.stats();
            latencies_us.sort_by(|a, b| a.total_cmp(b));
            let p99_accepted_us = if latencies_us.is_empty() {
                0.0
            } else {
                let idx = ((latencies_us.len() - 1) as f64 * 0.99).round() as usize;
                latencies_us[idx.min(latencies_us.len() - 1)]
            };
            let shed_rate = if offered > 0 { shed as f64 / offered as f64 } else { 0.0 };
            eprintln!(
                "[qdgnn-bench] {}: overload offered {offered}, accepted {accepted}, shed {shed} ({:.0}% | admission {}, dequeue {}), p99 accepted {:.0}us",
                dataset.name,
                shed_rate * 100.0,
                engine_stats.shed_admission,
                engine_stats.shed_deadline,
                p99_accepted_us
            );
            log.reset();
            OverloadStats {
                dataset: dataset.name.clone(),
                deadline_us,
                offered,
                accepted,
                shed,
                shed_admission: engine_stats.shed_admission,
                shed_deadline: engine_stats.shed_deadline,
                worker_panics: engine_stats.worker_panics,
                p99_accepted_us,
                shed_rate,
            }
        })
        .collect()
}

/// Times the sequential and batched serving paths over one workload
/// (the test split cycled to [`THROUGHPUT_QUERIES`] queries), asserting
/// inline that batched scores carry the exact bits of sequential scores
/// before any timing. Both passes serve through the same cached stage,
/// so the comparison isolates the batching itself.
pub fn measure_throughput(stage: &OnlineStage<'_>, test_queries: &[Query]) -> ThroughputStats {
    let workload: Vec<Query> =
        test_queries.iter().cycle().take(THROUGHPUT_QUERIES).cloned().collect();
    if workload.is_empty() {
        return ThroughputStats::default();
    }
    // Bit-identity check on the first chunk — a throughput number for a
    // batched path that changed the answers would be meaningless.
    let first: Vec<Query> = workload.iter().take(THROUGHPUT_BATCH).cloned().collect();
    for (q, res) in first.iter().zip(stage.try_scores_batch(&first)) {
        let batched = res.expect("bench query must be valid");
        let sequential = stage.try_scores(q).expect("bench query must be valid");
        assert!(
            sequential.iter().zip(&batched).all(|(s, b)| s.to_bits() == b.to_bits()),
            "batched scores must be bit-identical to sequential"
        );
    }
    let t0 = Instant::now();
    for q in &workload {
        let _ = stage.try_query(q).expect("bench query must be valid");
    }
    let sequential_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    for chunk in workload.chunks(THROUGHPUT_BATCH) {
        for r in stage.try_query_batch(chunk) {
            let _ = r.expect("bench query must be valid");
        }
    }
    let batched_s = t0.elapsed().as_secs_f64();
    let n = workload.len() as f64;
    ThroughputStats {
        batch_size: THROUGHPUT_BATCH as u64,
        sequential_qps: if sequential_s > 0.0 { n / sequential_s } else { 0.0 },
        batched_qps: if batched_s > 0.0 { n / batched_s } else { 0.0 },
    }
}

/// Runs the training benchmark `measure_rounds` times, returning one
/// [`TrainBenchReport`] per round. Each round trains a bench-scale
/// AQD-GNN from scratch per dataset and records epochs/sec (the obs
/// wall clock behind `train_seconds`) and the peak live tensor bytes
/// (the obs memory accounting's high watermark over the run).
pub fn measure_train(measure_rounds: usize, log: &mut EventLog) -> Vec<TrainBenchReport> {
    let mut rounds: Vec<TrainBenchReport> =
        (0..measure_rounds).map(|_| TrainBenchReport::default()).collect();
    for dataset in bench_datasets() {
        let mc = bench_model_config();
        let tensors = GraphTensors::new(&dataset.graph, mc.adj_norm, mc.fusion_graph_attr_cap);
        let split = bench_queries(&dataset, AttrMode::FromCommunity, 1, 3);
        for round in rounds.iter_mut() {
            // Peak restarts at the current live total, so the watermark
            // below is "live before training + training's own buffers".
            log.reset();
            let trained = Trainer::new(bench_train_config()).train(
                AqdGnn::new(bench_model_config(), tensors.d),
                &tensors,
                &split.train,
                &split.val,
            );
            let peak = qdgnn_obs::mem_peak_bytes();
            let epochs = trained.report.epochs_run as u64;
            let eps = if trained.report.train_seconds > 0.0 {
                epochs as f64 / trained.report.train_seconds
            } else {
                0.0
            };
            eprintln!(
                "[qdgnn-bench] {}: {} epochs at {:.2} epochs/s, peak {} live bytes",
                dataset.name, epochs, eps, peak
            );
            round.datasets.push((
                dataset.name.clone(),
                TrainDataset { epochs, epochs_per_sec: eps, peak_live_bytes: peak },
            ));
        }
    }
    log.reset();
    rounds
}
