#![warn(missing_docs)]

//! # qdgnn-bench
//!
//! Shared fixtures for the Criterion benchmarks. Each bench target under
//! `benches/` regenerates the *measurement* of one paper table/figure at
//! benchmark-friendly scale (see DESIGN.md §3); the full-scale numbers
//! come from the `qdgnn-experiments` binaries.
//!
//! Fixtures are deliberately small (the toy and FB-414 replica datasets,
//! few training epochs) so `cargo bench --workspace` completes in
//! minutes on one core while still exercising the exact production code
//! paths: training epochs, online inference, constrained BFS,
//! decompositions and baseline searches.

pub mod gate;
pub mod measure;
pub mod report;

use qdgnn_core::config::ModelConfig;
use qdgnn_core::models::{AqdGnn, QdGnn};
use qdgnn_core::train::{TrainConfig, TrainedModel, Trainer};
use qdgnn_core::GraphTensors;
use qdgnn_data::{queries as qgen, AttrMode, Dataset, Query, QuerySplit};

/// A ready-to-query fixture: dataset, tensors, splits and a trained model.
pub struct Fixture<M> {
    /// The dataset.
    pub dataset: Dataset,
    /// Its tensors.
    pub tensors: GraphTensors,
    /// The query split used for training/evaluation.
    pub split: QuerySplit,
    /// The trained model with its threshold.
    pub trained: TrainedModel<M>,
}

/// Benchmark-scale model configuration.
pub fn bench_model_config() -> ModelConfig {
    ModelConfig { hidden: 32, ..ModelConfig::default() }
}

/// Benchmark-scale training configuration.
pub fn bench_train_config() -> TrainConfig {
    TrainConfig {
        epochs: 12,
        validate_every: 6,
        gamma_grid: vec![0.3, 0.5, 0.7],
        ..Default::default()
    }
}

/// Queries for a dataset under `mode` (60 split 30/15/15).
pub fn bench_queries(dataset: &Dataset, mode: AttrMode, min_v: usize, max_v: usize) -> QuerySplit {
    let queries = qgen::generate(dataset, 60, min_v, max_v, mode, 0xBE7C);
    QuerySplit::new(queries, 30, 15, 15)
}

/// Trains a bench-scale QD-GNN on the toy dataset (EmA queries).
pub fn qd_fixture() -> Fixture<QdGnn> {
    let dataset = qdgnn_data::presets::toy();
    let mc = bench_model_config();
    let tensors = GraphTensors::new(&dataset.graph, mc.adj_norm, mc.fusion_graph_attr_cap);
    let split = bench_queries(&dataset, AttrMode::Empty, 1, 3);
    let trained = Trainer::new(bench_train_config()).train(
        QdGnn::new(mc, tensors.d),
        &tensors,
        &split.train,
        &split.val,
    );
    Fixture { dataset, tensors, split, trained }
}

/// Trains a bench-scale AQD-GNN on the toy dataset (AFC queries).
pub fn aqd_fixture() -> Fixture<AqdGnn> {
    let dataset = qdgnn_data::presets::toy();
    let mc = bench_model_config();
    let tensors = GraphTensors::new(&dataset.graph, mc.adj_norm, mc.fusion_graph_attr_cap);
    let split = bench_queries(&dataset, AttrMode::FromCommunity, 1, 3);
    let trained = Trainer::new(bench_train_config()).train(
        AqdGnn::new(mc, tensors.d),
        &tensors,
        &split.train,
        &split.val,
    );
    Fixture { dataset, tensors, split, trained }
}

/// An untrained AQD-GNN fixture (for pure-latency benches where training
/// quality is irrelevant).
pub fn aqd_untrained() -> Fixture<AqdGnn> {
    let dataset = qdgnn_data::presets::fb_414();
    let mc = bench_model_config();
    let tensors = GraphTensors::new(&dataset.graph, mc.adj_norm, mc.fusion_graph_attr_cap);
    let split = bench_queries(&dataset, AttrMode::FromCommunity, 1, 3);
    let model = AqdGnn::new(mc, tensors.d);
    let trained = TrainedModel {
        model,
        gamma: 0.5,
        report: qdgnn_core::train::TrainReport {
            epochs_run: 0,
            best_val_f1: 0.0,
            best_gamma: 0.5,
            loss_history: vec![],
            val_history: vec![],
            train_seconds: 0.0,
            skipped_steps: 0,
            recoveries: 0,
            checkpoint_write_failures: 0,
            diverged: false,
        },
    };
    Fixture { dataset, tensors, split, trained }
}

/// A single representative test query from a fixture.
pub fn first_test_query<M>(fixture: &Fixture<M>) -> &Query {
    &fixture.split.test[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let f = qd_fixture();
        assert!(!f.split.test.is_empty());
        assert!(f.trained.gamma > 0.0);
        let g = aqd_untrained();
        assert_eq!(g.trained.report.epochs_run, 0);
        assert!(!first_test_query(&g).vertices.is_empty());
    }
}
