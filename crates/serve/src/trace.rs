//! Request-scoped telemetry: the per-request trace record the engine
//! fills in as a request moves through admission, the queue, a batch
//! and the online stage, plus the tail-exemplar ring that retains the
//! most interesting traces for the `/traces` endpoint.
//!
//! Traces are recorded in **every** build (like the engine's failure
//! counters): the exemplar ring and the phase arithmetic never depend
//! on the obs feature, only the labeled-metric and trace-event mirrors
//! do. All timings are on the engine's injected clock, so a fake-clock
//! test can pin the attribution exactly — the serving integration tests
//! assert `queue_wait + batch_share + bfs + overhead == span` with no
//! tolerance.

use std::collections::VecDeque;
use std::sync::Arc;

use qdgnn_obs::json;

/// Terminal disposition of one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Answered with a community.
    Answered,
    /// Answered with a typed per-query error (malformed query).
    QueryError,
    /// Shed at admission: the queue-wait estimate already exceeded the
    /// request's deadline budget, so it never entered the queue.
    ShedAdmission,
    /// Shed at dequeue: the deadline expired while queued.
    ShedDeadline,
    /// The worker executing this request's batch panicked; supervision
    /// answered the whole batch with `WorkerPanicked`.
    WorkerPanicked,
}

impl TraceOutcome {
    /// Stable label value used for the `outcome` metric label and the
    /// trace JSONL.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceOutcome::Answered => "answered",
            TraceOutcome::QueryError => "query_error",
            TraceOutcome::ShedAdmission => "shed_admission",
            TraceOutcome::ShedDeadline => "shed_deadline",
            TraceOutcome::WorkerPanicked => "worker_panicked",
        }
    }

    /// Whether this disposition counts as shed/failed for the exemplar
    /// ring's recently-shed window.
    pub fn is_shed(self) -> bool {
        matches!(
            self,
            TraceOutcome::ShedAdmission | TraceOutcome::ShedDeadline | TraceOutcome::WorkerPanicked
        )
    }
}

/// Exact phase attribution for one request, engine-clock microseconds.
///
/// The phases partition the request's end-to-end span:
/// `queue_wait_us + batch_share_us + bfs_us + overhead_us == span_us`,
/// exactly, in every build. Shed requests have the batch phases zeroed
/// (`span_us` is how long they waited before being shed; zero for
/// admission-tier sheds that never entered the queue).
#[derive(Clone, Debug)]
pub struct RequestTrace {
    /// Engine-unique request id, minted at submit.
    pub request_id: u64,
    /// Caller-supplied tenant label, if any (bounded cardinality is the
    /// caller's contract; the metric layer caps label sets regardless).
    pub tenant: Option<Arc<str>>,
    /// Admission timestamp (engine clock).
    pub admitted_us: u64,
    /// Time spent queued before its batch was drained.
    pub queue_wait_us: u64,
    /// Size of the batch this request executed in (0 when shed).
    pub batch_size: u64,
    /// Position of this request within its batch (0-based).
    pub batch_position: u64,
    /// This request's amortized share of the batch forward pass. Shares
    /// across a batch sum exactly to the measured forward time.
    pub batch_share_us: u64,
    /// This request's own constrained-BFS + extraction time.
    pub bfs_us: u64,
    /// End-to-end span from admission to the terminal disposition.
    pub span_us: u64,
    /// `span_us` minus the attributed phases: reply-channel and
    /// bookkeeping time.
    pub overhead_us: u64,
    /// Terminal disposition.
    pub outcome: TraceOutcome,
    /// Whether the batch executed under the degraded (batch = 1)
    /// circuit-breaker regime. Always `false` for shed requests.
    pub degraded: bool,
}

impl RequestTrace {
    /// One JSONL line for the `/traces` endpoint and trace dumps.
    pub fn to_json(&self) -> String {
        let tenant = match &self.tenant {
            Some(t) => json::escape(t),
            None => "null".to_string(),
        };
        format!(
            "{{\"type\":\"request_trace\",\"request_id\":{},\"tenant\":{tenant},\
             \"outcome\":\"{}\",\"admitted_us\":{},\"queue_wait_us\":{},\
             \"batch_size\":{},\"batch_position\":{},\"batch_share_us\":{},\
             \"bfs_us\":{},\"span_us\":{},\"overhead_us\":{},\"degraded\":{}}}",
            self.request_id,
            self.outcome.as_str(),
            self.admitted_us,
            self.queue_wait_us,
            self.batch_size,
            self.batch_position,
            self.batch_share_us,
            self.bfs_us,
            self.span_us,
            self.overhead_us,
            self.degraded,
        )
    }
}

/// Tail-exemplar retention: within a rolling window, keeps the K
/// slowest traces (any outcome) and the K most recently shed ones, so
/// `/traces` can answer "what did the worst requests look like" without
/// retaining every trace.
pub struct ExemplarRing {
    k: usize,
    window_us: u64,
    window_start_us: u64,
    slowest: Vec<RequestTrace>,
    shed: VecDeque<RequestTrace>,
}

impl ExemplarRing {
    /// A ring keeping `k` exemplars per category over `window_us` wide
    /// windows (engine clock).
    pub fn new(k: usize, window_us: u64) -> Self {
        ExemplarRing { k, window_us, window_start_us: 0, slowest: Vec::new(), shed: VecDeque::new() }
    }

    /// Offers one finished trace at engine time `now_us`. Crossing a
    /// window boundary clears both categories first, so exemplars never
    /// describe load older than one window.
    pub fn record(&mut self, now_us: u64, trace: RequestTrace) {
        if now_us.saturating_sub(self.window_start_us) >= self.window_us {
            self.slowest.clear();
            self.shed.clear();
            self.window_start_us = now_us;
        }
        if trace.outcome.is_shed() {
            if self.shed.len() == self.k {
                self.shed.pop_front();
            }
            self.shed.push_back(trace.clone());
        }
        if self.slowest.len() < self.k {
            self.slowest.push(trace);
        } else if let Some((at, min)) = self
            .slowest
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| t.span_us)
            .map(|(i, t)| (i, t.span_us))
        {
            if trace.span_us > min {
                if let Some(slot) = self.slowest.get_mut(at) {
                    *slot = trace;
                }
            }
        }
    }

    /// Current exemplars: the slowest set (descending by span), then the
    /// shed set (oldest first).
    pub fn snapshot(&self) -> Vec<RequestTrace> {
        let mut out: Vec<RequestTrace> = self.slowest.clone();
        out.sort_by_key(|t| std::cmp::Reverse(t.span_us));
        out.extend(self.shed.iter().cloned());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64, span_us: u64, outcome: TraceOutcome) -> RequestTrace {
        RequestTrace {
            request_id: id,
            tenant: None,
            admitted_us: 0,
            queue_wait_us: span_us,
            batch_size: 0,
            batch_position: 0,
            batch_share_us: 0,
            bfs_us: 0,
            span_us,
            overhead_us: 0,
            outcome,
            degraded: false,
        }
    }

    #[test]
    fn json_line_has_the_schema_fields() {
        let mut t = trace(7, 120, TraceOutcome::Answered);
        t.tenant = Some(Arc::from("acme"));
        let j = t.to_json();
        for needle in [
            "\"type\":\"request_trace\"",
            "\"request_id\":7",
            "\"tenant\":\"acme\"",
            "\"outcome\":\"answered\"",
            "\"span_us\":120",
            "\"degraded\":false",
        ] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
        assert!(trace(1, 0, TraceOutcome::ShedDeadline).to_json().contains("\"tenant\":null"));
    }

    #[test]
    fn slowest_keeps_the_k_largest_spans() {
        let mut ring = ExemplarRing::new(2, 1_000_000);
        for (id, span) in [(1, 10), (2, 50), (3, 30), (4, 5), (5, 40)] {
            ring.record(100, trace(id, span, TraceOutcome::Answered));
        }
        let snap = ring.snapshot();
        let ids: Vec<u64> = snap.iter().map(|t| t.request_id).collect();
        assert_eq!(ids, vec![2, 5], "slowest exemplars in descending span order");
    }

    #[test]
    fn shed_keeps_the_k_most_recent_in_order() {
        let mut ring = ExemplarRing::new(2, 1_000_000);
        ring.record(10, trace(1, 3, TraceOutcome::ShedDeadline));
        ring.record(11, trace(2, 2, TraceOutcome::ShedAdmission));
        ring.record(12, trace(3, 1, TraceOutcome::WorkerPanicked));
        let shed: Vec<u64> = ring
            .snapshot()
            .into_iter()
            .filter(|t| t.outcome.is_shed())
            .map(|t| t.request_id)
            .collect();
        // id 1 evicted (oldest); shed exemplars are also span-eligible
        // for the slowest set, so filter on outcome and dedup.
        assert!(shed.ends_with(&[2, 3]), "eviction must drop the oldest shed trace: {shed:?}");
        assert!(!shed.contains(&1) || shed.iter().filter(|&&i| i == 1).count() <= 1);
    }

    #[test]
    fn window_rollover_clears_both_categories() {
        let mut ring = ExemplarRing::new(4, 100);
        ring.record(10, trace(1, 99, TraceOutcome::Answered));
        ring.record(20, trace(2, 98, TraceOutcome::ShedDeadline));
        assert!(!ring.snapshot().is_empty());
        ring.record(200, trace(3, 1, TraceOutcome::Answered));
        let ids: Vec<u64> = ring.snapshot().iter().map(|t| t.request_id).collect();
        assert_eq!(ids, vec![3], "old-window exemplars must be dropped");
    }
}
