//! Engine configuration.

use crate::error::ServeError;

/// Tunables of the batching engine.
///
/// The adaptive batcher drains up to [`ServeConfig::max_batch`] queued
/// requests into one stacked forward pass, flushing early once the
/// oldest queued request has waited [`ServeConfig::max_wait_us`] — so an
/// idle engine answers a lone request within the wait budget, and a busy
/// engine amortizes one forward across a full batch.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Maximum requests stacked into one forward pass.
    pub max_batch: usize,
    /// Deadline (µs, engine clock) from the oldest queued request's
    /// submission to its batch being flushed. `0` disables batching
    /// delays entirely: every drain takes whatever is queued right now.
    pub max_wait_us: u64,
    /// Bounded submission-queue capacity; submissions beyond it are
    /// rejected with [`ServeError::QueueFull`] (backpressure, never
    /// blocking the submitter).
    pub queue_capacity: usize,
    /// Worker threads executing batches.
    pub workers: usize,
    /// Default per-request deadline budget (µs, engine clock) applied by
    /// `ServeEngine::submit`; `0` disables deadlines (requests wait
    /// indefinitely, the pre-deadline behaviour). Requests whose
    /// deadline expires in the queue are shed at dequeue time with
    /// [`ServeError::DeadlineExceeded`] instead of occupying a batch
    /// slot, and admission rejects outright once the estimated queue
    /// wait already exceeds the budget.
    pub deadline_us: u64,
    /// Worker panics within [`ServeConfig::panic_window_us`] that trip
    /// the circuit breaker into degraded single-query (batch = 1) mode,
    /// so a poisoned query stops taking out co-batched neighbors. Must
    /// be at least 1.
    pub panic_threshold: u32,
    /// Sliding window (µs, engine clock) over which worker panics are
    /// counted toward [`ServeConfig::panic_threshold`].
    pub panic_window_us: u64,
    /// How long (µs, engine clock) the engine stays in degraded
    /// single-query mode after the breaker trips; a panic during the
    /// cooldown restarts it. After a quiet cooldown, batching resumes.
    pub breaker_cooldown_us: u64,
    /// How many tail exemplars the engine retains per category (the K
    /// slowest request traces and the K most recently shed ones) within
    /// each exemplar window, for `ServeEngine::exemplars` and the
    /// `/traces` endpoint. Must be at least 1.
    pub exemplar_k: usize,
    /// Width (µs, engine clock) of the exemplar retention window;
    /// crossing a window boundary clears the retained exemplars so they
    /// never describe stale load. Must be at least 1.
    pub exemplar_window_us: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 16,
            max_wait_us: 2_000,
            queue_capacity: 256,
            workers: 1,
            deadline_us: 0,
            panic_threshold: 3,
            panic_window_us: 10_000_000,
            breaker_cooldown_us: 5_000_000,
            exemplar_k: 4,
            exemplar_window_us: 60_000_000,
        }
    }
}

impl ServeConfig {
    /// Validates the configuration, returning a typed error on nonsense
    /// values (the engine refuses to start rather than deadlock).
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig("max_batch must be at least 1".into()));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig("queue_capacity must be at least 1".into()));
        }
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig("workers must be at least 1".into()));
        }
        if self.panic_threshold == 0 {
            return Err(ServeError::InvalidConfig("panic_threshold must be at least 1".into()));
        }
        if self.exemplar_k == 0 {
            return Err(ServeError::InvalidConfig("exemplar_k must be at least 1".into()));
        }
        if self.exemplar_window_us == 0 {
            return Err(ServeError::InvalidConfig("exemplar_window_us must be at least 1".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_degenerate_values_are_rejected() {
        assert!(ServeConfig::default().validate().is_ok());
        for bad in [
            ServeConfig { max_batch: 0, ..ServeConfig::default() },
            ServeConfig { queue_capacity: 0, ..ServeConfig::default() },
            ServeConfig { workers: 0, ..ServeConfig::default() },
            ServeConfig { panic_threshold: 0, ..ServeConfig::default() },
            ServeConfig { exemplar_k: 0, ..ServeConfig::default() },
            ServeConfig { exemplar_window_us: 0, ..ServeConfig::default() },
        ] {
            assert!(matches!(bad.validate(), Err(ServeError::InvalidConfig(_))));
        }
    }
}
