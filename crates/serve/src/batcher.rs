//! The adaptive batching policy, factored out of the worker loop so the
//! flush decision is a pure function of (queue state, clock) — unit- and
//! fake-clock-testable without threads.

/// What a worker holding the queue lock should do next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchDecision {
    /// Drain a batch now.
    Flush,
    /// Keep waiting, but at most this many microseconds before the
    /// oldest request's deadline expires (re-evaluate on wake-up).
    WaitAtMost(u64),
}

/// The flush policy: batch-size threshold plus an oldest-request
/// deadline.
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// Flush as soon as this many requests are queued.
    pub max_batch: usize,
    /// Flush once the oldest queued request is this old (µs).
    pub max_wait_us: u64,
}

impl BatchPolicy {
    /// Decides whether a worker should flush, given `queued` waiting
    /// requests of which the oldest was enqueued at `oldest_enqueue_us`,
    /// and the current engine-clock reading `now_us`.
    ///
    /// With `queued == 0` there is nothing to flush and the answer is
    /// an unbounded wait, encoded as `WaitAtMost(u64::MAX)`.
    pub fn decide(&self, queued: usize, oldest_enqueue_us: u64, now_us: u64) -> BatchDecision {
        if queued == 0 {
            return BatchDecision::WaitAtMost(u64::MAX);
        }
        if queued >= self.max_batch {
            return BatchDecision::Flush;
        }
        let deadline = oldest_enqueue_us.saturating_add(self.max_wait_us);
        if now_us >= deadline {
            BatchDecision::Flush
        } else {
            BatchDecision::WaitAtMost(deadline - now_us)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POLICY: BatchPolicy = BatchPolicy { max_batch: 4, max_wait_us: 1_000 };

    #[test]
    fn full_batch_flushes_immediately() {
        assert_eq!(POLICY.decide(4, 0, 0), BatchDecision::Flush);
        assert_eq!(POLICY.decide(9, 0, 0), BatchDecision::Flush);
    }

    #[test]
    fn partial_batch_waits_out_the_deadline_exactly() {
        // Oldest request enqueued at t=100, deadline t=1100.
        assert_eq!(POLICY.decide(1, 100, 100), BatchDecision::WaitAtMost(1_000));
        assert_eq!(POLICY.decide(2, 100, 1_099), BatchDecision::WaitAtMost(1));
        assert_eq!(POLICY.decide(2, 100, 1_100), BatchDecision::Flush);
        assert_eq!(POLICY.decide(2, 100, 5_000), BatchDecision::Flush);
    }

    #[test]
    fn zero_wait_budget_flushes_any_nonempty_queue() {
        let p = BatchPolicy { max_batch: 64, max_wait_us: 0 };
        assert_eq!(p.decide(1, 42, 42), BatchDecision::Flush);
    }

    #[test]
    fn empty_queue_waits_unbounded() {
        assert_eq!(POLICY.decide(0, 0, 99), BatchDecision::WaitAtMost(u64::MAX));
    }

    #[test]
    fn deadline_saturates_instead_of_wrapping() {
        let p = BatchPolicy { max_batch: 8, max_wait_us: u64::MAX };
        assert_eq!(p.decide(1, u64::MAX - 5, u64::MAX - 1), BatchDecision::WaitAtMost(1));
    }
}
