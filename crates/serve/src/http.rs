//! A dependency-free telemetry endpoint for the serving engine.
//!
//! [`TelemetryServer::start`] binds a TCP listener and serves three
//! read-only views over HTTP/1.0 from a single dedicated thread,
//! completely isolated from the worker pool (a slow or hostile scraper
//! can never stall a query):
//!
//! * `GET /metrics` — the obs registry snapshot in Prometheus text
//!   exposition format (labeled series included). The engine's stats
//!   gauges are refreshed immediately before the snapshot, so the
//!   exposition can never disagree with the engine's own atomics.
//! * `GET /healthz` — a JSON verdict: breaker/degraded state, queue
//!   depth and the failure counters. Answers `503` while the engine is
//!   degraded, `200` otherwise, so a load balancer can act on it.
//! * `GET /traces` — the current tail exemplars (K slowest + K most
//!   recently shed request traces) as JSONL, one
//!   [`RequestTrace`](crate::trace::RequestTrace) per line.
//!
//! The protocol surface is deliberately tiny: GET only, bounded request
//! read, per-connection read/write timeouts, `Connection: close` on
//! every response. Shutdown flips a flag and unblocks the accept loop
//! with a throwaway self-connection, then joins the thread.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::engine::ServeEngine;
use crate::error::ServeError;

/// Upper bound on one request's bytes; requests are GET-with-no-body,
/// so anything longer is garbage and gets a 400.
const MAX_REQUEST_BYTES: usize = 4096;

/// Per-connection read/write timeout: a stalled scraper is disconnected
/// rather than pinning the listener thread.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Handle to a running telemetry listener. Shuts down on `Drop` (or
/// explicitly via [`TelemetryServer::shutdown`]); dropping the handle
/// never affects the serving engine itself.
pub struct TelemetryServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9095"`; port `0` picks a free
    /// port, readable back via [`TelemetryServer::addr`]) and starts the
    /// listener thread serving telemetry for `engine`.
    pub fn start(engine: Arc<ServeEngine>, addr: &str) -> Result<TelemetryServer, ServeError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| ServeError::Telemetry(format!("bind {addr}: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| ServeError::Telemetry(format!("local_addr: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("qdgnn-telemetry".into())
            .spawn(move || accept_loop(&listener, &engine, &flag))
            .map_err(|e| ServeError::Telemetry(format!("spawn listener thread: {e}")))?;
        Ok(TelemetryServer { addr: local, shutdown, handle: Some(handle) })
    }

    /// The bound address (resolves port `0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener: flips the shutdown flag, unblocks the accept
    /// loop with a self-connection, and joins the thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.handle.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loop re-checks the flag after every accept; this
        // throwaway connection guarantees one more wake-up.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accepts connections until the shutdown flag flips. Connections are
/// served inline — telemetry traffic is a scraper every few seconds,
/// not a request flood, and one thread keeps the surface minimal.
fn accept_loop(listener: &TcpListener, engine: &Arc<ServeEngine>, shutdown: &AtomicBool) {
    loop {
        let conn = listener.accept();
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Ok((stream, _peer)) = conn {
            serve_connection(stream, engine);
        }
    }
}

/// Reads one bounded request, routes it, writes one response. All I/O
/// errors end the connection silently — the scraper retries.
fn serve_connection(mut stream: TcpStream, engine: &ServeEngine) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let Some(path) = read_request_path(&mut stream) else {
        let _ = write_response(&mut stream, 400, "text/plain", "bad request\n");
        return;
    };
    let (status, ctype, body) = respond(engine, &path);
    let _ = write_response(&mut stream, status, ctype, &body);
}

/// Builds the response for one routed path.
fn respond(engine: &ServeEngine, path: &str) -> (u16, &'static str, String) {
    match path {
        "/metrics" => {
            // Refresh the serve.stats.* gauges so the exposition agrees
            // with the engine's atomics at scrape time.
            let _ = engine.stats();
            (200, "text/plain; version=0.0.4", qdgnn_obs::snapshot().to_prometheus())
        }
        "/healthz" => {
            let stats = engine.stats();
            let depth = engine.queue_depth();
            let verdict = if stats.degraded { "degraded" } else { "ok" };
            let code = if stats.degraded { 503 } else { 200 };
            let body = format!(
                "{{\"status\":\"{verdict}\",\"degraded\":{},\"queue_depth\":{depth},\
                 \"shed_admission\":{},\"shed_deadline\":{},\"worker_panics\":{},\
                 \"breaker_trips\":{}}}\n",
                stats.degraded,
                stats.shed_admission,
                stats.shed_deadline,
                stats.worker_panics,
                stats.breaker_trips,
            );
            (code, "application/json", body)
        }
        "/traces" => {
            let mut body = String::new();
            for t in engine.exemplars() {
                body.push_str(&t.to_json());
                body.push('\n');
            }
            (200, "application/x-ndjson", body)
        }
        _ => (404, "text/plain", "not found; try /metrics, /healthz or /traces\n".to_string()),
    }
}

/// Reads until the first line is complete (or the byte cap / timeout
/// hits) and returns the GET path, query string stripped. `None` for
/// anything that is not a well-formed GET.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 512];
    while buf.len() < MAX_REQUEST_BYTES && !buf.contains(&b'\n') {
        let n = stream.read(&mut chunk).ok()?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(chunk.get(..n)?);
    }
    let text = String::from_utf8_lossy(&buf);
    let mut parts = text.lines().next()?.split_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    let path = parts.next()?;
    Some(path.split('?').next()?.to_string())
}

/// Writes one complete HTTP/1.0 response.
fn write_response(
    stream: &mut TcpStream,
    status: u16,
    ctype: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {ctype}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServeConfig;
    use qdgnn_core::{AqdGnn, CsModel, GraphTensors, ModelConfig, OnlineStage};
    use qdgnn_data::{presets, queries as qgen, AttrMode};
    use qdgnn_graph::attributed::AdjNorm;

    fn engine() -> (Arc<ServeEngine>, Vec<qdgnn_data::Query>) {
        let data = presets::toy();
        let t = Arc::new(GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100));
        let queries = qgen::generate(&data, 8, 1, 2, AttrMode::FromCommunity, 7);
        let model: Arc<dyn CsModel> = Arc::new(AqdGnn::new(ModelConfig::fast(), t.d));
        let stage = OnlineStage::new_shared(model, t, 0.5);
        let engine = ServeEngine::new(
            stage,
            ServeConfig { max_batch: 4, max_wait_us: 200, ..ServeConfig::default() },
        )
        .expect("engine must start");
        (Arc::new(engine), queries)
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
            .expect("request written");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("response read");
        out
    }

    #[test]
    fn endpoints_serve_health_metrics_and_traces() {
        let (engine, queries) = engine();
        for q in queries.iter().take(3) {
            let _ = engine.query_blocking(q.clone());
        }
        let mut server =
            TelemetryServer::start(Arc::clone(&engine), "127.0.0.1:0").expect("server must start");
        let addr = server.addr();

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.0 200"), "healthy engine must answer 200: {health}");
        assert!(health.contains("\"status\":\"ok\"") && health.contains("\"queue_depth\":"));

        let traces = get(addr, "/traces");
        assert!(traces.starts_with("HTTP/1.0 200"));
        assert!(
            traces.contains("\"type\":\"request_trace\""),
            "served queries must leave exemplar traces: {traces}"
        );
        assert!(traces.contains("\"outcome\":\"answered\""));

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.0 200"));
        if qdgnn_obs::enabled() {
            assert!(
                metrics.contains("qdgnn_serve_request"),
                "labeled request series missing from exposition: {metrics}"
            );
        }

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"));

        let bad = {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.write_all(b"POST /metrics HTTP/1.0\r\n\r\n").expect("request written");
            let mut out = String::new();
            stream.read_to_string(&mut out).expect("response read");
            out
        };
        assert!(bad.starts_with("HTTP/1.0 400"), "non-GET must be rejected: {bad}");

        server.shutdown();
        server.shutdown(); // idempotent
        engine.shutdown();
    }
}
