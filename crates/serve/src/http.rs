//! A dependency-free telemetry endpoint for the serving engine.
//!
//! [`TelemetryServer::start`] serves three read-only views over
//! HTTP/1.0, completely isolated from the worker pool (a slow or
//! hostile scraper can never stall a query):
//!
//! * `GET /metrics` — the obs registry snapshot in Prometheus text
//!   exposition format (labeled series included). The engine's stats
//!   gauges are refreshed immediately before the snapshot, so the
//!   exposition can never disagree with the engine's own atomics.
//! * `GET /healthz` — a JSON verdict: breaker/degraded state, queue
//!   depth and the failure counters. Answers `503` while the engine is
//!   degraded, `200` otherwise, so a load balancer can act on it.
//! * `GET /traces` — the current tail exemplars (K slowest + K most
//!   recently shed request traces) as JSONL, one
//!   [`RequestTrace`](crate::trace::RequestTrace) per line.
//!
//! The socket machinery (GET-only parsing, bounded reads, timeouts,
//! single-thread accept loop, self-connect shutdown) lives in the shared
//! [`qdgnn_obs::httpd`] listener — the same server that backs the
//! training-run dashboard — so this module is only the engine-specific
//! routing.

use std::net::SocketAddr;
use std::sync::Arc;

use qdgnn_obs::httpd::{HttpServer, Response};

use crate::engine::ServeEngine;
use crate::error::ServeError;

/// Handle to a running telemetry listener. Shuts down on `Drop` (or
/// explicitly via [`TelemetryServer::shutdown`]); dropping the handle
/// never affects the serving engine itself.
pub struct TelemetryServer {
    server: HttpServer,
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9095"`; port `0` picks a free
    /// port, readable back via [`TelemetryServer::addr`]) and starts the
    /// listener thread serving telemetry for `engine`.
    pub fn start(engine: Arc<ServeEngine>, addr: &str) -> Result<TelemetryServer, ServeError> {
        let server = HttpServer::start(addr, "qdgnn-telemetry", move |path| {
            respond(&engine, path)
        })
        .map_err(|e| ServeError::Telemetry(format!("bind {addr}: {e}")))?;
        Ok(TelemetryServer { server })
    }

    /// The bound address (resolves port `0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// Stops the listener: flips the shutdown flag, unblocks the accept
    /// loop with a self-connection, and joins the thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.server.shutdown();
    }
}

/// Builds the response for one routed path.
fn respond(engine: &ServeEngine, path: &str) -> Response {
    match path {
        "/metrics" => {
            // Refresh the serve.stats.* gauges so the exposition agrees
            // with the engine's atomics at scrape time.
            let _ = engine.stats();
            (200, "text/plain; version=0.0.4", qdgnn_obs::snapshot().to_prometheus())
        }
        "/healthz" => {
            let stats = engine.stats();
            let depth = engine.queue_depth();
            let verdict = if stats.degraded { "degraded" } else { "ok" };
            let code = if stats.degraded { 503 } else { 200 };
            let body = format!(
                "{{\"status\":\"{verdict}\",\"degraded\":{},\"queue_depth\":{depth},\
                 \"shed_admission\":{},\"shed_deadline\":{},\"worker_panics\":{},\
                 \"breaker_trips\":{}}}\n",
                stats.degraded,
                stats.shed_admission,
                stats.shed_deadline,
                stats.worker_panics,
                stats.breaker_trips,
            );
            (code, "application/json", body)
        }
        "/traces" => {
            let mut body = String::new();
            for t in engine.exemplars() {
                body.push_str(&t.to_json());
                body.push('\n');
            }
            (200, "application/x-ndjson", body)
        }
        _ => (404, "text/plain", "not found; try /metrics, /healthz or /traces\n".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServeConfig;
    use qdgnn_core::{AqdGnn, CsModel, GraphTensors, ModelConfig, OnlineStage};
    use qdgnn_data::{presets, queries as qgen, AttrMode};
    use qdgnn_graph::attributed::AdjNorm;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn engine() -> (Arc<ServeEngine>, Vec<qdgnn_data::Query>) {
        let data = presets::toy();
        let t = Arc::new(GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100));
        let queries = qgen::generate(&data, 8, 1, 2, AttrMode::FromCommunity, 7);
        let model: Arc<dyn CsModel> = Arc::new(AqdGnn::new(ModelConfig::fast(), t.d));
        let stage = OnlineStage::new_shared(model, t, 0.5);
        let engine = ServeEngine::new(
            stage,
            ServeConfig { max_batch: 4, max_wait_us: 200, ..ServeConfig::default() },
        )
        .expect("engine must start");
        (Arc::new(engine), queries)
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
            .expect("request written");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("response read");
        out
    }

    #[test]
    fn endpoints_serve_health_metrics_and_traces() {
        let (engine, queries) = engine();
        for q in queries.iter().take(3) {
            let _ = engine.query_blocking(q.clone());
        }
        let mut server =
            TelemetryServer::start(Arc::clone(&engine), "127.0.0.1:0").expect("server must start");
        let addr = server.addr();

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.0 200"), "healthy engine must answer 200: {health}");
        assert!(health.contains("\"status\":\"ok\"") && health.contains("\"queue_depth\":"));

        let traces = get(addr, "/traces");
        assert!(traces.starts_with("HTTP/1.0 200"));
        assert!(
            traces.contains("\"type\":\"request_trace\""),
            "served queries must leave exemplar traces: {traces}"
        );
        assert!(traces.contains("\"outcome\":\"answered\""));

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.0 200"));
        if qdgnn_obs::enabled() {
            assert!(
                metrics.contains("qdgnn_serve_request"),
                "labeled request series missing from exposition: {metrics}"
            );
        }

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"));

        let bad = {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.write_all(b"POST /metrics HTTP/1.0\r\n\r\n").expect("request written");
            let mut out = String::new();
            stream.read_to_string(&mut out).expect("response read");
            out
        };
        assert!(bad.starts_with("HTTP/1.0 400"), "non-GET must be rejected: {bad}");

        server.shutdown();
        server.shutdown(); // idempotent
        engine.shutdown();
    }
}
