//! Typed errors of the serving engine.
//!
//! The engine runs indefinitely against untrusted callers: overload,
//! shutdown races and malformed queries all surface as values, never as
//! panics (the workspace QD001 rule covers this crate).

use std::fmt;

use qdgnn_core::QdgnnError;

/// Why the engine could not produce a community for a request.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The bounded submission queue was full — backpressure. The caller
    /// should retry later or shed load; the engine never blocks a
    /// submitter.
    QueueFull {
        /// The configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// The engine is draining in-flight work and accepts no new
    /// requests.
    ShuttingDown,
    /// The query itself was malformed (per-query error isolation: other
    /// requests in the same batch are unaffected).
    Query(QdgnnError),
    /// The request's deadline expired before a worker could serve it.
    /// Shed at admission (`waited_us == 0`: the estimated queue wait
    /// already exceeded the budget) or at dequeue (the request sat in
    /// the queue past its deadline and was answered without wasting a
    /// batch slot).
    DeadlineExceeded {
        /// How long the request actually waited before being shed (µs,
        /// engine clock; `0` for admission-tier sheds).
        waited_us: u64,
        /// The deadline budget the request carried (µs).
        deadline_us: u64,
    },
    /// The worker executing this request's batch panicked mid-flight.
    /// The request was *not* necessarily the poison: every co-batched
    /// request of a dying batch gets this answer, the worker restarts,
    /// and repeated panics trip the engine into degraded single-query
    /// mode (see `ServeConfig::panic_threshold`).
    WorkerPanicked,
    /// The worker serving this request disappeared before responding —
    /// only possible if a worker thread died abnormally.
    WorkerLost,
    /// The engine configuration is unusable (zero capacity, no workers).
    InvalidConfig(String),
    /// The telemetry endpoint could not start or serve (bind failure,
    /// listener thread could not spawn). Serving itself is unaffected —
    /// the telemetry listener is isolated from the worker pool.
    Telemetry(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
            ServeError::Query(e) => write!(f, "query error: {e}"),
            ServeError::DeadlineExceeded { waited_us, deadline_us } => write!(
                f,
                "deadline exceeded ({deadline_us}µs budget, shed after {waited_us}µs in queue)"
            ),
            ServeError::WorkerPanicked => {
                write!(f, "serving worker panicked while executing this request's batch")
            }
            ServeError::WorkerLost => write!(f, "worker thread lost before responding"),
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve config: {msg}"),
            ServeError::Telemetry(msg) => write!(f, "telemetry endpoint error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QdgnnError> for ServeError {
    fn from(e: QdgnnError) -> Self {
        ServeError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_cause() {
        let e = ServeError::QueueFull { capacity: 64 };
        assert!(e.to_string().contains("64"));
        let e = ServeError::Query(QdgnnError::EmptyQuery);
        assert!(e.to_string().contains("at least one vertex"));
        assert!(std::error::Error::source(&e).is_some());
        let e = ServeError::DeadlineExceeded { waited_us: 750, deadline_us: 500 };
        assert!(e.to_string().contains("500"));
        assert!(e.to_string().contains("750"));
        let e = ServeError::WorkerPanicked;
        assert!(e.to_string().contains("panicked"));
    }
}
