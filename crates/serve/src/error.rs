//! Typed errors of the serving engine.
//!
//! The engine runs indefinitely against untrusted callers: overload,
//! shutdown races and malformed queries all surface as values, never as
//! panics (the workspace QD001 rule covers this crate).

use std::fmt;

use qdgnn_core::QdgnnError;

/// Why the engine could not produce a community for a request.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The bounded submission queue was full — backpressure. The caller
    /// should retry later or shed load; the engine never blocks a
    /// submitter.
    QueueFull {
        /// The configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// The engine is draining in-flight work and accepts no new
    /// requests.
    ShuttingDown,
    /// The query itself was malformed (per-query error isolation: other
    /// requests in the same batch are unaffected).
    Query(QdgnnError),
    /// The worker serving this request disappeared before responding —
    /// only possible if a worker thread died abnormally.
    WorkerLost,
    /// The engine configuration is unusable (zero capacity, no workers).
    InvalidConfig(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
            ServeError::Query(e) => write!(f, "query error: {e}"),
            ServeError::WorkerLost => write!(f, "worker thread lost before responding"),
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve config: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QdgnnError> for ServeError {
    fn from(e: QdgnnError) -> Self {
        ServeError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_cause() {
        let e = ServeError::QueueFull { capacity: 64 };
        assert!(e.to_string().contains("64"));
        let e = ServeError::Query(QdgnnError::EmptyQuery);
        assert!(e.to_string().contains("at least one vertex"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
