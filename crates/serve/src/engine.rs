//! The batching serving engine: a bounded submission queue drained by a
//! worker pool into stacked forward passes.
//!
//! Life of a request: [`ServeEngine::submit`] stamps it with the engine
//! clock and enqueues it (rejecting with [`ServeError::QueueFull`] or
//! [`ServeError::ShuttingDown`] instead of ever blocking the caller); a
//! worker wakes, asks the [`BatchPolicy`] whether to flush, drains up to
//! `max_batch` requests FIFO, runs one
//! [`OnlineStage::try_query_batch`] outside the queue lock, and answers
//! each request on its private reply channel. Per-query error isolation
//! comes from the stage: one malformed query in a batch fails alone.
//!
//! Shutdown is graceful by construction: [`ServeEngine::shutdown`] (or
//! `Drop`) flips the shutdown flag — which atomically stops admissions —
//! then workers keep flushing until the queue is empty and exit, so
//! every accepted request gets exactly one response.
//!
//! Time flows through an injected [`Clock`], never a direct wall-clock
//! read: workers bound their real condvar waits to a short poll tick and
//! re-consult the injected clock for every deadline decision, so a
//! [`FakeClock`](qdgnn_obs::clock::FakeClock) test can freeze or advance
//! batching time deterministically.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use qdgnn_core::OnlineStage;
use qdgnn_data::Query;
use qdgnn_graph::VertexId;
use qdgnn_obs::clock::{Clock, MonotonicClock};

use crate::batcher::{BatchDecision, BatchPolicy};
use crate::config::ServeConfig;
use crate::error::ServeError;

/// Upper bound on one real condvar wait (µs). Workers sleep at most this
/// long before re-reading the injected clock, which keeps deadline
/// decisions responsive to a hand-advanced fake clock while costing an
/// idle engine about one wake-up per millisecond.
const POLL_TICK_US: u64 = 1_000;

type Reply = Result<Vec<VertexId>, ServeError>;

/// One queued request: the query, its admission timestamp (engine
/// clock), and the channel its answer travels back on.
struct Request {
    query: Query,
    enqueue_us: u64,
    reply: mpsc::Sender<Reply>,
}

/// Queue state guarded by the engine mutex.
struct QueueState {
    requests: VecDeque<Request>,
    shutting_down: bool,
}

/// State shared between the engine handle and its workers.
struct Shared {
    stage: OnlineStage<'static>,
    queue: Mutex<QueueState>,
    work_ready: Condvar,
    policy: BatchPolicy,
    capacity: usize,
    clock: Arc<dyn Clock>,
}

/// An in-flight request handle returned by [`ServeEngine::submit`].
///
/// Dropping it without waiting is allowed: the worker's answer is then
/// discarded (the query still runs — admission is a commitment).
pub struct Pending {
    rx: mpsc::Receiver<Reply>,
}

impl Pending {
    /// Blocks until the engine answers this request.
    ///
    /// A closed channel means the serving worker died before responding,
    /// surfaced as [`ServeError::WorkerLost`] — it cannot happen during
    /// an orderly shutdown, which drains every accepted request first.
    pub fn wait(self) -> Reply {
        self.rx.recv().unwrap_or(Err(ServeError::WorkerLost))
    }

    /// Non-blocking probe: `Some(reply)` once the engine has answered,
    /// `None` while the request is still queued or executing.
    pub fn try_wait(&self) -> Option<Reply> {
        match self.rx.try_recv() {
            Ok(reply) => Some(reply),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::WorkerLost)),
        }
    }

    /// Blocks up to `timeout` for the answer; `None` on timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Reply> {
        match self.rx.recv_timeout(timeout) {
            Ok(reply) => Some(reply),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServeError::WorkerLost)),
        }
    }
}

/// The serving engine: owns an [`OnlineStage`] and a pool of worker
/// threads batching queued queries through it.
pub struct ServeEngine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl ServeEngine {
    /// Starts an engine over `stage` with a production monotonic clock.
    pub fn new(stage: OnlineStage<'static>, cfg: ServeConfig) -> Result<Self, ServeError> {
        Self::with_clock(stage, cfg, Arc::new(MonotonicClock::new()))
    }

    /// Starts an engine with an injected [`Clock`] — the batching
    /// deadline (`max_wait_us`) is measured against this clock, which is
    /// how tests pin the deadline behaviour with a fake clock.
    pub fn with_clock(
        stage: OnlineStage<'static>,
        cfg: ServeConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<Self, ServeError> {
        cfg.validate()?;
        let shared = Arc::new(Shared {
            stage,
            queue: Mutex::new(QueueState { requests: VecDeque::new(), shutting_down: false }),
            work_ready: Condvar::new(),
            policy: BatchPolicy { max_batch: cfg.max_batch, max_wait_us: cfg.max_wait_us },
            capacity: cfg.queue_capacity,
            clock,
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qdgnn-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(|e| ServeError::InvalidConfig(format!("failed to spawn worker: {e}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ServeEngine { shared, workers: Mutex::new(workers) })
    }

    /// Enqueues a query for batched execution. Never blocks: a full
    /// queue rejects with [`ServeError::QueueFull`] (backpressure) and a
    /// draining engine with [`ServeError::ShuttingDown`]. On `Ok`, the
    /// request is committed — exactly one reply will reach the returned
    /// [`Pending`] handle.
    pub fn submit(&self, query: Query) -> Result<Pending, ServeError> {
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.shared.queue.lock();
            if q.shutting_down {
                qdgnn_obs::counter("serve.rejected").inc();
                return Err(ServeError::ShuttingDown);
            }
            if q.requests.len() >= self.shared.capacity {
                qdgnn_obs::counter("serve.rejected").inc();
                return Err(ServeError::QueueFull { capacity: self.shared.capacity });
            }
            let enqueue_us = self.shared.clock.now_micros();
            q.requests.push_back(Request { query, enqueue_us, reply: tx });
            qdgnn_obs::observe("serve.queue_depth", q.requests.len() as f64);
        }
        self.shared.work_ready.notify_one();
        Ok(Pending { rx })
    }

    /// Convenience: [`ServeEngine::submit`] plus [`Pending::wait`].
    pub fn query_blocking(&self, query: Query) -> Result<Vec<VertexId>, ServeError> {
        self.submit(query)?.wait()
    }

    /// Requests currently queued (excludes batches already executing).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().requests.len()
    }

    /// Stops admissions, drains every queued request through the workers,
    /// and joins them. Idempotent (later calls are no-ops); also runs on
    /// `Drop`. After this returns, [`ServeEngine::submit`] answers
    /// [`ServeError::ShuttingDown`].
    pub fn shutdown(&self) {
        {
            let mut q = self.shared.queue.lock();
            q.shutting_down = true;
        }
        self.shared.work_ready.notify_all();
        let handles: Vec<JoinHandle<()>> = {
            let mut workers = self.workers.lock();
            workers.drain(..).collect()
        };
        for handle in handles {
            // A worker that panicked already lost its in-flight replies
            // (surfaced to waiters as WorkerLost); nothing to salvage.
            let _ = handle.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Blocks until the policy says flush (or shutdown drains), then drains
/// up to `max_batch` requests FIFO. `None` means shutdown with an empty
/// queue: the worker should exit.
fn next_batch(shared: &Shared) -> Option<Vec<Request>> {
    let mut q = shared.queue.lock();
    loop {
        if q.shutting_down {
            if q.requests.is_empty() {
                return None;
            }
            // Drain mode: flush whatever is queued, deadline irrelevant.
            break;
        }
        let now = shared.clock.now_micros();
        let oldest = q.requests.front().map(|r| r.enqueue_us).unwrap_or(now);
        match shared.policy.decide(q.requests.len(), oldest, now) {
            BatchDecision::Flush => break,
            BatchDecision::WaitAtMost(us) => {
                // Cap the real sleep at one poll tick so the next
                // deadline decision re-reads the injected clock: under a
                // fake clock, `us` says "forever" until the test advances
                // time, and the condvar wait must not believe it.
                let tick = us.min(POLL_TICK_US);
                let (guard, _timed_out) = shared
                    .work_ready
                    .wait_timeout(q, Duration::from_micros(tick))
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                q = guard;
            }
        }
    }
    let take = q.requests.len().min(shared.policy.max_batch);
    Some(q.requests.drain(..take).collect())
}

/// Worker body: flush batches until shutdown empties the queue.
fn worker_loop(shared: &Shared) {
    loop {
        let Some(batch) = next_batch(shared) else {
            return;
        };
        if batch.is_empty() {
            continue;
        }
        let _flush_span = qdgnn_obs::span!("serve.flush");
        let now = shared.clock.now_micros();
        for req in &batch {
            qdgnn_obs::observe("serve.queue_wait", now.saturating_sub(req.enqueue_us) as f64);
        }
        let queries: Vec<Query> = batch.iter().map(|r| r.query.clone()).collect();
        let results = shared.stage.try_query_batch(&queries);
        for (req, res) in batch.into_iter().zip(results) {
            // A submitter that dropped its Pending no longer cares.
            let _ = req.reply.send(res.map_err(ServeError::Query));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdgnn_core::{AqdGnn, CsModel, GraphTensors, ModelConfig};
    use qdgnn_data::{presets, queries as qgen, AttrMode};
    use qdgnn_graph::attributed::AdjNorm;
    use qdgnn_obs::clock::FakeClock;

    /// Two stages over the *same* model and tensors (shared `Arc`s): one
    /// for the engine, one kept as the sequential reference.
    fn twin_stages() -> (OnlineStage<'static>, OnlineStage<'static>, Vec<Query>) {
        let data = presets::toy();
        let t = Arc::new(GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100));
        let queries = qgen::generate(&data, 24, 1, 2, AttrMode::FromCommunity, 7);
        let model: Arc<dyn CsModel> = Arc::new(AqdGnn::new(ModelConfig::fast(), t.d));
        let engine_stage = OnlineStage::new_shared(Arc::clone(&model), Arc::clone(&t), 0.5);
        let reference = OnlineStage::new_shared(model, t, 0.5);
        (engine_stage, reference, queries)
    }

    #[test]
    fn engine_answers_match_direct_stage_calls() {
        let (stage, reference, queries) = twin_stages();
        let engine = ServeEngine::new(
            stage,
            ServeConfig { max_batch: 8, max_wait_us: 200, queue_capacity: 64, workers: 1 },
        )
        .expect("engine must start");
        let pending: Vec<Pending> = queries
            .iter()
            .map(|q| engine.submit(q.clone()).expect("queue has room"))
            .collect();
        for (q, p) in queries.iter().zip(pending) {
            let got = p.wait().expect("valid query must be served");
            let want = reference.try_query(q).expect("reference agrees the query is valid");
            assert_eq!(got, want, "engine answer must match the direct stage call");
        }
        engine.shutdown();
    }

    #[test]
    fn full_queue_rejects_and_shutdown_still_drains_accepted_work() {
        let (stage, _reference, queries) = twin_stages();
        // Frozen clock + oversized batch: workers can never flush, so the
        // queue fills deterministically.
        let clock = Arc::new(FakeClock::new());
        let engine = ServeEngine::with_clock(
            stage,
            ServeConfig { max_batch: 64, max_wait_us: 10_000, queue_capacity: 4, workers: 1 },
            clock,
        )
        .expect("engine must start");
        let accepted: Vec<Pending> = queries
            .iter()
            .take(4)
            .map(|q| engine.submit(q.clone()).expect("queue has room"))
            .collect();
        assert_eq!(engine.queue_depth(), 4);
        match engine.submit(queries[4].clone()) {
            Err(ServeError::QueueFull { capacity }) => assert_eq!(capacity, 4),
            Err(other) => panic!("expected QueueFull, got {other:?}"),
            Ok(_) => panic!("expected QueueFull, got an accepted submission"),
        }
        // Graceful shutdown must answer every accepted request even with
        // the batching clock frozen.
        engine.shutdown();
        for p in accepted {
            assert!(p.wait().is_ok(), "accepted request lost in shutdown");
        }
        assert!(matches!(engine.submit(queries[0].clone()), Err(ServeError::ShuttingDown)));
    }

    #[test]
    fn shutdown_drains_multiple_batches_and_isolates_bad_queries() {
        let (stage, _reference, mut queries) = twin_stages();
        let n = stage.tensors().n as u32;
        queries.truncate(9);
        // Plant one malformed query mid-queue: it must fail alone.
        queries[4] = Query { vertices: vec![n + 3], attrs: vec![], truth: vec![] };
        let clock = Arc::new(FakeClock::new());
        let engine = ServeEngine::with_clock(
            stage,
            // max_batch 3 < 9 queued: the drain needs several flushes.
            ServeConfig { max_batch: 3, max_wait_us: 60_000_000, queue_capacity: 32, workers: 1 },
            clock,
        )
        .expect("engine must start");
        let pending: Vec<Pending> = queries
            .iter()
            .map(|q| engine.submit(q.clone()).expect("queue has room"))
            .collect();
        engine.shutdown();
        for (i, p) in pending.into_iter().enumerate() {
            let reply = p.wait();
            if i == 4 {
                assert!(
                    matches!(reply, Err(ServeError::Query(_))),
                    "malformed query must fail with a typed query error"
                );
            } else {
                assert!(reply.is_ok(), "well-formed query {i} lost in shutdown drain");
            }
        }
    }

    #[test]
    fn fake_clock_pins_the_max_wait_deadline() {
        let (stage, _reference, queries) = twin_stages();
        let clock = Arc::new(FakeClock::new());
        let engine = ServeEngine::with_clock(
            stage,
            ServeConfig { max_batch: 8, max_wait_us: 500, queue_capacity: 16, workers: 1 },
            Arc::clone(&clock) as Arc<dyn Clock>,
        )
        .expect("engine must start");
        let a = engine.submit(queries[0].clone()).expect("queue has room");
        let b = engine.submit(queries[1].clone()).expect("queue has room");
        // Real time passes, fake time does not: the partial batch must
        // not flush no matter how long we wait.
        std::thread::sleep(Duration::from_millis(30));
        assert!(a.try_wait().is_none(), "flushed before the injected-clock deadline");
        assert!(b.try_wait().is_none(), "flushed before the injected-clock deadline");
        // One tick short of the deadline: still queued.
        clock.advance_micros(499);
        std::thread::sleep(Duration::from_millis(30));
        assert!(a.try_wait().is_none(), "flushed one microsecond early");
        // Crossing the deadline releases the batch promptly.
        clock.advance_micros(1);
        let ra = a.wait_timeout(Duration::from_secs(30)).expect("deadline crossed, must flush");
        let rb = b.wait_timeout(Duration::from_secs(30)).expect("deadline crossed, must flush");
        assert!(ra.is_ok() && rb.is_ok());
        engine.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_is_safe_after_it() {
        let (stage, _reference, queries) = twin_stages();
        let engine = ServeEngine::new(stage, ServeConfig::default()).expect("engine must start");
        let reply = engine.query_blocking(queries[0].clone());
        assert!(reply.is_ok());
        engine.shutdown();
        engine.shutdown();
        // Drop runs shutdown a third time.
    }
}
