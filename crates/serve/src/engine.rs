//! The batching serving engine: a bounded submission queue drained by a
//! supervised worker pool into stacked forward passes.
//!
//! Life of a request: [`ServeEngine::submit`] stamps it with the engine
//! clock and enqueues it (rejecting with [`ServeError::QueueFull`] or
//! [`ServeError::ShuttingDown`] instead of ever blocking the caller); a
//! worker wakes, asks the [`BatchPolicy`] whether to flush, drains up to
//! `max_batch` requests FIFO, runs one
//! [`OnlineStage::try_query_batch`] outside the queue lock, and answers
//! each request on its private reply channel. Per-query error isolation
//! comes from the stage: one malformed query in a batch fails alone.
//!
//! Three production failure modes are handled explicitly:
//!
//! * **Overload** — requests may carry a deadline
//!   ([`ServeEngine::submit_with_deadline`], or the config-wide
//!   [`ServeConfig::deadline_us`]). Expired requests are shed at
//!   dequeue time with a typed [`ServeError::DeadlineExceeded`] instead
//!   of wasting a batch slot (tier 1), and admission rejects outright
//!   once the engine's queue-wait estimate — an EWMA of the same waits
//!   the `serve.queue_wait` histogram records — already exceeds the
//!   request's budget (tier 2).
//! * **Worker death** — each worker runs under `catch_unwind`
//!   supervision: a panicking batch answers every in-flight reply with
//!   [`ServeError::WorkerPanicked`] (never dropping a `Pending`
//!   handle), then the worker loop restarts, so the pool never loses
//!   strength.
//! * **Poisoned queries** — [`ServeConfig::panic_threshold`] panics
//!   within [`ServeConfig::panic_window_us`] trip a circuit breaker
//!   into degraded single-query (batch = 1) mode for
//!   [`ServeConfig::breaker_cooldown_us`], so one poisoned query stops
//!   taking out co-batched neighbors; a quiet cooldown restores
//!   batching.
//!
//! Shutdown is graceful by construction: [`ServeEngine::shutdown`] (or
//! `Drop`) flips the shutdown flag — which atomically stops admissions —
//! then workers keep flushing until the queue is empty and exit; a
//! final assert-drain answers anything a dying worker could have left
//! behind, so every accepted request gets exactly one response.
//!
//! Time flows through an injected [`Clock`], never a direct wall-clock
//! read: workers bound their real condvar waits to a short poll tick and
//! re-consult the injected clock for every deadline decision, so a
//! [`FakeClock`](qdgnn_obs::clock::FakeClock) test can freeze or advance
//! batching time deterministically.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use qdgnn_core::OnlineStage;
use qdgnn_data::Query;
use qdgnn_graph::VertexId;
use qdgnn_obs::clock::{Clock, MonotonicClock};

use crate::batcher::{BatchDecision, BatchPolicy};
use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::trace::{ExemplarRing, RequestTrace, TraceOutcome};

/// Upper bound on one real condvar wait (µs). Workers sleep at most this
/// long before re-reading the injected clock, which keeps deadline
/// decisions responsive to a hand-advanced fake clock while costing an
/// idle engine about one wake-up per millisecond.
const POLL_TICK_US: u64 = 1_000;

/// Smoothing shift of the queue-wait EWMA: each observed wait
/// contributes 1/2^`EWMA_SHIFT` of itself (α = 1/8).
const EWMA_SHIFT: u64 = 3;

/// Sentinel deadline for requests without one.
const NO_DEADLINE: u64 = u64::MAX;

type Reply = Result<Vec<VertexId>, ServeError>;

/// One queued request: the query, its trace identity (engine-unique id
/// and optional tenant label), its admission timestamp and absolute
/// deadline (engine clock; [`NO_DEADLINE`] when none), and the channel
/// its answer travels back on. `wait_us` is stamped at flush time so a
/// panicking batch can still attribute queue wait in its traces.
struct Request {
    query: Query,
    id: u64,
    tenant: Option<Arc<str>>,
    enqueue_us: u64,
    deadline_us: u64,
    wait_us: u64,
    reply: mpsc::Sender<Reply>,
}

impl Request {
    /// The deadline budget this request carried (0 when none).
    fn budget_us(&self) -> u64 {
        if self.deadline_us == NO_DEADLINE {
            0
        } else {
            self.deadline_us.saturating_sub(self.enqueue_us)
        }
    }
}

/// Queue state guarded by the engine mutex.
struct QueueState {
    requests: VecDeque<Request>,
    shutting_down: bool,
}

/// Circuit-breaker state guarded by its own mutex: recent panic
/// timestamps (engine clock) and, when tripped, the trip time the
/// cooldown is measured from.
struct BreakerState {
    panic_times_us: VecDeque<u64>,
    tripped_at_us: Option<u64>,
}

/// Engine-local failure accounting, mirrored into the obs counters but
/// available in every build (tests assert exact counts without the obs
/// feature).
#[derive(Default)]
struct EngineCounters {
    shed_admission: AtomicU64,
    shed_deadline: AtomicU64,
    worker_panics: AtomicU64,
    breaker_trips: AtomicU64,
}

/// A point-in-time snapshot of the engine's failure accounting,
/// returned by [`ServeEngine::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests rejected at admission because the estimated queue wait
    /// already exceeded their deadline budget (tier-2 shedding).
    pub shed_admission: u64,
    /// Requests shed at dequeue time after their deadline expired in
    /// the queue (tier-1 shedding).
    pub shed_deadline: u64,
    /// Worker panics absorbed by supervision (each one answered its
    /// whole in-flight batch with [`ServeError::WorkerPanicked`]).
    pub worker_panics: u64,
    /// Times the circuit breaker tripped into degraded mode.
    pub breaker_trips: u64,
    /// Whether the engine is currently in degraded single-query mode.
    pub degraded: bool,
}

/// State shared between the engine handle and its workers.
struct Shared {
    stage: OnlineStage<'static>,
    queue: Mutex<QueueState>,
    work_ready: Condvar,
    policy: BatchPolicy,
    capacity: usize,
    clock: Arc<dyn Clock>,
    default_deadline_us: u64,
    panic_threshold: u32,
    panic_window_us: u64,
    breaker_cooldown_us: u64,
    /// EWMA (µs) of queue waits observed at dequeue — the admission
    /// shedding estimator. Mirrors the `serve.queue_wait` histogram's
    /// observations, but lives here so shedding works in every build.
    wait_ewma_us: AtomicU64,
    breaker: Mutex<BreakerState>,
    counters: EngineCounters,
    /// Monotonic request-id source; ids are minted at submit and ride
    /// the request through its trace.
    next_request_id: AtomicU64,
    /// Tail exemplars (K slowest + K recently shed per window) for the
    /// `/traces` endpoint. Recorded in every build, like the counters.
    exemplars: Mutex<ExemplarRing>,
    /// One in-flight slot per worker: the batch currently executing is
    /// parked here so the supervisor can answer it after a panic.
    in_flight: Vec<Mutex<Vec<Request>>>,
}

/// An in-flight request handle returned by [`ServeEngine::submit`].
///
/// Dropping it without waiting is allowed: the worker's answer is then
/// discarded (the query still runs — admission is a commitment).
pub struct Pending {
    rx: mpsc::Receiver<Reply>,
    deadline: Option<Duration>,
}

impl Pending {
    /// Blocks until the engine answers this request.
    ///
    /// When the request carries a deadline, the block is bounded: after
    /// the full deadline budget elapses in *caller* (real) time without
    /// an answer, this gives up with [`ServeError::DeadlineExceeded`].
    /// That is a backstop for a stalled engine — in healthy operation
    /// the engine sheds the request first and the typed reply arrives
    /// through the channel. Without a deadline this blocks until the
    /// engine replies, indefinitely if it never does.
    ///
    /// A closed channel means the serving worker died before responding,
    /// surfaced as [`ServeError::WorkerLost`] — it cannot happen during
    /// an orderly shutdown, which drains every accepted request first.
    pub fn wait(self) -> Reply {
        match self.deadline {
            Some(limit) => match self.rx.recv_timeout(limit) {
                Ok(reply) => reply,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    let us = u64::try_from(limit.as_micros()).unwrap_or(NO_DEADLINE);
                    Err(ServeError::DeadlineExceeded { waited_us: us, deadline_us: us })
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::WorkerLost),
            },
            // qdgnn-analyze: allow(QD008, reason = "documented contract: without a deadline, wait() blocks until the engine replies; deadline-carrying requests take the bounded recv_timeout branch above")
            None => self.rx.recv().unwrap_or(Err(ServeError::WorkerLost)),
        }
    }

    /// Non-blocking probe: `Some(reply)` once the engine has answered,
    /// `None` while the request is still queued or executing. Never
    /// blocks, so the request deadline plays no role here.
    pub fn try_wait(&self) -> Option<Reply> {
        match self.rx.try_recv() {
            Ok(reply) => Some(reply),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::WorkerLost)),
        }
    }

    /// Blocks up to `timeout` for the answer; `None` on timeout. The
    /// caller-chosen bound is used as given — it is not clamped to the
    /// request deadline, so a generous timeout can out-wait a deadline
    /// and still observe the engine's typed shed reply.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Reply> {
        match self.rx.recv_timeout(timeout) {
            Ok(reply) => Some(reply),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServeError::WorkerLost)),
        }
    }
}

/// The serving engine: owns an [`OnlineStage`] and a pool of supervised
/// worker threads batching queued queries through it.
pub struct ServeEngine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl ServeEngine {
    /// Starts an engine over `stage` with a production monotonic clock.
    pub fn new(stage: OnlineStage<'static>, cfg: ServeConfig) -> Result<Self, ServeError> {
        Self::with_clock(stage, cfg, Arc::new(MonotonicClock::new()))
    }

    /// Starts an engine with an injected [`Clock`] — batching deadlines,
    /// request deadlines and the breaker cooldown are all measured
    /// against this clock, which is how tests pin overload and failure
    /// behaviour with a fake clock.
    pub fn with_clock(
        stage: OnlineStage<'static>,
        cfg: ServeConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<Self, ServeError> {
        cfg.validate()?;
        let shared = Arc::new(Shared {
            stage,
            queue: Mutex::new(QueueState { requests: VecDeque::new(), shutting_down: false }),
            work_ready: Condvar::new(),
            policy: BatchPolicy { max_batch: cfg.max_batch, max_wait_us: cfg.max_wait_us },
            capacity: cfg.queue_capacity,
            clock,
            default_deadline_us: cfg.deadline_us,
            panic_threshold: cfg.panic_threshold,
            panic_window_us: cfg.panic_window_us,
            breaker_cooldown_us: cfg.breaker_cooldown_us,
            wait_ewma_us: AtomicU64::new(0),
            breaker: Mutex::new(BreakerState {
                panic_times_us: VecDeque::new(),
                tripped_at_us: None,
            }),
            counters: EngineCounters::default(),
            next_request_id: AtomicU64::new(0),
            exemplars: Mutex::new(ExemplarRing::new(cfg.exemplar_k, cfg.exemplar_window_us)),
            in_flight: (0..cfg.workers).map(|_| Mutex::new(Vec::new())).collect(),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qdgnn-serve-{i}"))
                    .spawn(move || supervise_worker(&shared, i))
                    .map_err(|e| ServeError::InvalidConfig(format!("failed to spawn worker: {e}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ServeEngine { shared, workers: Mutex::new(workers) })
    }

    /// Enqueues a query for batched execution with the config-default
    /// deadline ([`ServeConfig::deadline_us`]; `0` means none). Never
    /// blocks: a full queue rejects with [`ServeError::QueueFull`]
    /// (backpressure), a draining engine with
    /// [`ServeError::ShuttingDown`], and — when a deadline applies — an
    /// estimated queue wait already past the budget with
    /// [`ServeError::DeadlineExceeded`] (admission-tier shedding). On
    /// `Ok`, the request is committed — exactly one reply will reach the
    /// returned [`Pending`] handle.
    pub fn submit(&self, query: Query) -> Result<Pending, ServeError> {
        let d = self.shared.default_deadline_us;
        self.submit_with_deadline(query, (d > 0).then(|| Duration::from_micros(d)))
    }

    /// [`ServeEngine::submit`] with an explicit per-request deadline
    /// budget (`None` disables the deadline for this request regardless
    /// of the config default). The budget is measured on the engine
    /// clock from admission; a request still queued when it expires is
    /// shed at dequeue time with [`ServeError::DeadlineExceeded`].
    pub fn submit_with_deadline(
        &self,
        query: Query,
        deadline: Option<Duration>,
    ) -> Result<Pending, ServeError> {
        self.submit_labeled(query, None, deadline)
    }

    /// [`ServeEngine::submit_with_deadline`] plus a tenant label: the
    /// label rides the request's trace and keys the per-tenant labeled
    /// metric series (`serve.tenant_request`). Tenant values should be
    /// low-cardinality identifiers — the metric layer collapses excess
    /// label sets into an overflow series rather than growing without
    /// bound.
    pub fn submit_labeled(
        &self,
        query: Query,
        tenant: Option<&str>,
        deadline: Option<Duration>,
    ) -> Result<Pending, ServeError> {
        let (tx, rx) = mpsc::channel();
        let budget_us = deadline.map(|d| u64::try_from(d.as_micros()).unwrap_or(NO_DEADLINE));
        let tenant: Option<Arc<str>> = tenant.map(Arc::from);
        let id = self.shared.next_request_id.fetch_add(1, Ordering::Relaxed);
        // Admission runs under the queue lock; the shed trace is
        // recorded after the guard drops (the exemplar ring has its own
        // lock and must stay leaf-ordered after the queue).
        let admitted: Result<(), ServeError> = {
            let mut q = self.shared.queue.lock();
            if q.shutting_down {
                qdgnn_obs::counter("serve.rejected").inc();
                Err(ServeError::ShuttingDown)
            } else if q.requests.len() >= self.shared.capacity {
                qdgnn_obs::counter("serve.rejected").inc();
                Err(ServeError::QueueFull { capacity: self.shared.capacity })
            } else {
                // Tier-2 shedding: reject on admission when the queue is
                // backed up and recent queue waits already exceed this
                // request's whole budget — it would only be shed later
                // anyway, after clogging the queue. An empty queue skips
                // the estimate: the next flush is bounded by max_wait.
                let estimate = self.shared.wait_ewma_us.load(Ordering::Relaxed);
                let over_budget =
                    budget_us.is_some_and(|b| !q.requests.is_empty() && estimate > b);
                if over_budget {
                    self.shared.counters.shed_admission.fetch_add(1, Ordering::Relaxed);
                    qdgnn_obs::counter("serve.shed").inc();
                    qdgnn_obs::counter("serve.deadline_exceeded").inc();
                    Err(ServeError::DeadlineExceeded {
                        waited_us: 0,
                        deadline_us: budget_us.unwrap_or(0),
                    })
                } else {
                    let enqueue_us = self.shared.clock.now_micros();
                    let deadline_us =
                        budget_us.map(|b| enqueue_us.saturating_add(b)).unwrap_or(NO_DEADLINE);
                    q.requests.push_back(Request {
                        query,
                        id,
                        tenant: tenant.clone(),
                        enqueue_us,
                        deadline_us,
                        wait_us: 0,
                        reply: tx,
                    });
                    qdgnn_obs::observe("serve.queue_depth", q.requests.len() as f64);
                    Ok(())
                }
            }
        };
        match admitted {
            Ok(()) => {
                self.shared.work_ready.notify_one();
                Ok(Pending { rx, deadline: budget_us.map(Duration::from_micros) })
            }
            Err(e) => {
                if matches!(e, ServeError::DeadlineExceeded { .. }) {
                    let now = self.shared.clock.now_micros();
                    finish_trace(
                        &self.shared,
                        RequestTrace {
                            request_id: id,
                            tenant,
                            admitted_us: now,
                            queue_wait_us: 0,
                            batch_size: 0,
                            batch_position: 0,
                            batch_share_us: 0,
                            bfs_us: 0,
                            span_us: 0,
                            overhead_us: 0,
                            outcome: TraceOutcome::ShedAdmission,
                            degraded: false,
                        },
                    );
                }
                Err(e)
            }
        }
    }

    /// Convenience: [`ServeEngine::submit`] plus [`Pending::wait`].
    pub fn query_blocking(&self, query: Query) -> Result<Vec<VertexId>, ServeError> {
        // qdgnn-analyze: allow(QD008, reason = "wait() is deadline-bounded whenever the engine has a default deadline; the unbounded no-deadline case is this API's documented contract")
        self.submit(query)?.wait()
    }

    /// Requests currently queued (excludes batches already executing).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().requests.len()
    }

    /// Snapshot of the engine's failure accounting: shed counts per
    /// tier, absorbed worker panics, breaker trips, and whether the
    /// engine is currently degraded. Exact in every build (independent
    /// of the obs feature).
    ///
    /// As a side effect, every snapshot is mirrored into obs gauges
    /// (`serve.stats.*`, `serve.degraded_mode`, `serve.stats.queue_depth`),
    /// so a Prometheus scrape that calls `stats()` first can never
    /// disagree with the engine's own atomics.
    pub fn stats(&self) -> EngineStats {
        let now = self.shared.clock.now_micros();
        let stats = EngineStats {
            shed_admission: self.shared.counters.shed_admission.load(Ordering::Relaxed),
            shed_deadline: self.shared.counters.shed_deadline.load(Ordering::Relaxed),
            worker_panics: self.shared.counters.worker_panics.load(Ordering::Relaxed),
            breaker_trips: self.shared.counters.breaker_trips.load(Ordering::Relaxed),
            degraded: degraded_now(&self.shared, now),
        };
        qdgnn_obs::gauge("serve.stats.shed_admission").set(stats.shed_admission as f64);
        qdgnn_obs::gauge("serve.stats.shed_deadline").set(stats.shed_deadline as f64);
        qdgnn_obs::gauge("serve.stats.worker_panics").set(stats.worker_panics as f64);
        qdgnn_obs::gauge("serve.stats.breaker_trips").set(stats.breaker_trips as f64);
        qdgnn_obs::gauge("serve.degraded_mode").set(if stats.degraded { 1.0 } else { 0.0 });
        qdgnn_obs::gauge("serve.stats.queue_depth").set(self.queue_depth() as f64);
        stats
    }

    /// Current tail exemplars: the K slowest and K most recently shed
    /// request traces of the active window (see
    /// [`ServeConfig::exemplar_k`]). Backs the `/traces` endpoint.
    pub fn exemplars(&self) -> Vec<RequestTrace> {
        self.shared.exemplars.lock().snapshot()
    }

    /// Whether the circuit breaker currently holds the engine in
    /// degraded single-query (batch = 1) mode.
    pub fn is_degraded(&self) -> bool {
        degraded_now(&self.shared, self.shared.clock.now_micros())
    }

    /// Stops admissions, drains every queued request through the workers,
    /// and joins them. Idempotent (later calls are no-ops); also runs on
    /// `Drop`. After this returns, [`ServeEngine::submit`] answers
    /// [`ServeError::ShuttingDown`].
    pub fn shutdown(&self) {
        {
            let mut q = self.shared.queue.lock();
            q.shutting_down = true;
        }
        self.shared.work_ready.notify_all();
        let handles: Vec<JoinHandle<()>> = {
            let mut workers = self.workers.lock();
            workers.drain(..).collect()
        };
        for handle in handles {
            // Supervision means workers only exit through the orderly
            // drain; a join error would be a double panic inside the
            // supervisor itself, with nothing left to salvage there.
            let _ = handle.join();
        }
        // Assert-drain: after an orderly join, no queue entry or
        // in-flight slot may still hold a reply channel. Anything found
        // here is a supervision bug — answer it with a typed error
        // rather than dropping the Pending handle, and fail loudly in
        // debug builds.
        let mut leaked = 0usize;
        {
            let mut q = self.shared.queue.lock();
            while let Some(req) = q.requests.pop_front() {
                leaked += 1;
                let _ = req.reply.send(Err(ServeError::WorkerPanicked));
            }
        }
        for slot in &self.shared.in_flight {
            for req in std::mem::take(&mut *slot.lock()) {
                leaked += 1;
                let _ = req.reply.send(Err(ServeError::WorkerPanicked));
            }
        }
        debug_assert_eq!(
            leaked, 0,
            "shutdown had to answer {leaked} replies the supervised workers should have drained"
        );
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Terminal-point bookkeeping for one finished request: offers the
/// trace to the exemplar ring (every build, exact), then mirrors it
/// into the labeled obs series — `serve.request{outcome}` (counter plus
/// buffered trace event with the full phase breakdown),
/// `serve.request_span{outcome}` (histogram), and, when the request
/// carried a tenant, `serve.tenant_request{tenant,outcome}`.
///
/// May run under the queue lock (dequeue-tier sheds); the exemplar lock
/// is a leaf — nothing is acquired while holding it.
fn finish_trace(shared: &Shared, trace: RequestTrace) {
    let now = shared.clock.now_micros();
    shared.exemplars.lock().record(now, trace.clone());
    let outcome = trace.outcome.as_str();
    if let Some(tenant) = trace.tenant.as_deref() {
        qdgnn_obs::counter_with("serve.tenant_request", &[("tenant", tenant), ("outcome", outcome)])
            .inc();
    }
    qdgnn_obs::observe_with("serve.request_span", &[("outcome", outcome)], trace.span_us as f64);
    qdgnn_obs::trace(
        "serve.request",
        &[("outcome", outcome)],
        &[
            ("request_id", trace.request_id as f64),
            ("admitted_us", trace.admitted_us as f64),
            ("queue_wait_us", trace.queue_wait_us as f64),
            ("batch_size", trace.batch_size as f64),
            ("batch_position", trace.batch_position as f64),
            ("batch_share_us", trace.batch_share_us as f64),
            ("bfs_us", trace.bfs_us as f64),
            ("span_us", trace.span_us as f64),
            ("overhead_us", trace.overhead_us as f64),
            ("degraded", if trace.degraded { 1.0 } else { 0.0 }),
        ],
    );
}

/// Whether the breaker currently holds the engine degraded at `now`.
/// Recovery happens here: a cooldown that has fully elapsed closes the
/// breaker (clearing the panic history) and restores batching.
fn degraded_now(shared: &Shared, now: u64) -> bool {
    let mut b = shared.breaker.lock();
    match b.tripped_at_us {
        None => false,
        Some(tripped) => {
            if now.saturating_sub(tripped) >= shared.breaker_cooldown_us {
                b.tripped_at_us = None;
                b.panic_times_us.clear();
                qdgnn_obs::gauge("serve.degraded_mode").set(0.0);
                false
            } else {
                true
            }
        }
    }
}

/// Breaker accounting for one absorbed worker panic: count it, age out
/// panics older than the window, and trip (or re-arm) degraded mode.
fn record_panic(shared: &Shared) {
    let now = shared.clock.now_micros();
    shared.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
    qdgnn_obs::counter("serve.worker_panics").inc();
    let mut b = shared.breaker.lock();
    b.panic_times_us.push_back(now);
    let cutoff = now.saturating_sub(shared.panic_window_us);
    while b.panic_times_us.front().is_some_and(|&t| t < cutoff) {
        b.panic_times_us.pop_front();
    }
    if b.tripped_at_us.is_some() {
        // A panic during the cooldown restarts it.
        b.tripped_at_us = Some(now);
    } else if b.panic_times_us.len() as u32 >= shared.panic_threshold {
        b.tripped_at_us = Some(now);
        shared.counters.breaker_trips.fetch_add(1, Ordering::Relaxed);
        qdgnn_obs::counter("serve.breaker_trips").inc();
        qdgnn_obs::gauge("serve.degraded_mode").set(1.0);
    }
}

/// Tier-1 shedding: answers every queued request whose deadline has
/// passed with a typed [`ServeError::DeadlineExceeded`], removing it
/// from the queue so it never occupies a batch slot. Runs under the
/// queue lock; the channel send never blocks.
fn shed_expired(shared: &Shared, q: &mut QueueState, now: u64) {
    let mut i = 0;
    while i < q.requests.len() {
        let expired = q.requests.get(i).is_some_and(|r| r.deadline_us <= now);
        if !expired {
            i += 1;
            continue;
        }
        let Some(req) = q.requests.remove(i) else { break };
        shared.counters.shed_deadline.fetch_add(1, Ordering::Relaxed);
        qdgnn_obs::counter("serve.shed").inc();
        qdgnn_obs::counter("serve.deadline_exceeded").inc();
        let waited_us = now.saturating_sub(req.enqueue_us);
        // Trace before replying: once the submitter observes the shed,
        // the trace is already queryable.
        finish_trace(
            shared,
            RequestTrace {
                request_id: req.id,
                tenant: req.tenant.clone(),
                admitted_us: req.enqueue_us,
                queue_wait_us: waited_us,
                batch_size: 0,
                batch_position: 0,
                batch_share_us: 0,
                bfs_us: 0,
                span_us: waited_us,
                overhead_us: 0,
                outcome: TraceOutcome::ShedDeadline,
                degraded: false,
            },
        );
        let _ = req.reply.send(Err(ServeError::DeadlineExceeded {
            waited_us,
            deadline_us: req.budget_us(),
        }));
    }
}

/// Folds one observed queue wait into the admission estimator. Races
/// between workers can drop an update; the estimator only needs to
/// track the trend, not count exactly.
fn observe_wait_ewma(shared: &Shared, wait_us: u64) {
    let e = shared.wait_ewma_us.load(Ordering::Relaxed);
    let updated = e - (e >> EWMA_SHIFT) + (wait_us >> EWMA_SHIFT);
    shared.wait_ewma_us.store(updated, Ordering::Relaxed);
}

/// Blocks until the policy says flush (or shutdown drains), then drains
/// up to `max_batch` requests FIFO (1 in degraded mode). Expired
/// requests are shed before every flush decision. `None` means shutdown
/// with an empty queue: the worker should exit. The returned flag says
/// whether the batch was taken under the degraded regime, so request
/// traces can record it.
fn next_batch(shared: &Shared) -> Option<(Vec<Request>, bool)> {
    let mut q = shared.queue.lock();
    loop {
        let now = shared.clock.now_micros();
        shed_expired(shared, &mut q, now);
        if q.shutting_down {
            if q.requests.is_empty() {
                return None;
            }
            // Drain mode: flush whatever is queued, deadline irrelevant.
            break;
        }
        // Degraded mode suspends batching entirely: flush single
        // requests as soon as they arrive, so a poisoned query can only
        // take itself down.
        if !q.requests.is_empty() && degraded_now(shared, now) {
            break;
        }
        let oldest = q.requests.front().map(|r| r.enqueue_us).unwrap_or(now);
        match shared.policy.decide(q.requests.len(), oldest, now) {
            BatchDecision::Flush => break,
            BatchDecision::WaitAtMost(us) => {
                // Cap the real sleep at one poll tick so the next
                // deadline decision re-reads the injected clock: under a
                // fake clock, `us` says "forever" until the test advances
                // time, and the condvar wait must not believe it.
                let tick = us.min(POLL_TICK_US);
                shared
                    .work_ready
                    // qdgnn-analyze: allow(QD011, reason = "condvar wait atomically releases the queue guard while blocked and reacquires it on wake")
                    .wait_for(&mut q, Duration::from_micros(tick));
            }
        }
    }
    let now = shared.clock.now_micros();
    let degraded = degraded_now(shared, now);
    let limit = if degraded { 1 } else { shared.policy.max_batch };
    let take = q.requests.len().min(limit);
    Some((q.requests.drain(..take).collect(), degraded))
}

/// Worker body: flush batches until shutdown empties the queue. The
/// in-flight `slot` parks each batch across the fallible forward pass
/// so the supervisor can answer it after a panic.
fn worker_loop(shared: &Shared, slot: &Mutex<Vec<Request>>) {
    loop {
        let Some((mut batch, degraded)) = next_batch(shared) else {
            return;
        };
        if batch.is_empty() {
            continue;
        }
        let _flush_span = qdgnn_obs::span!("serve.flush");
        let now = shared.clock.now_micros();
        for req in &mut batch {
            // Stamp the queue wait on the request itself: if the batch
            // panics mid-forward, its traces still attribute the wait.
            req.wait_us = now.saturating_sub(req.enqueue_us);
            qdgnn_obs::observe("serve.queue_wait", req.wait_us as f64);
            observe_wait_ewma(shared, req.wait_us);
        }
        let queries: Vec<Query> = batch.iter().map(|r| r.query.clone()).collect();
        // Park the batch before the forward pass: if the stage panics,
        // nothing below runs, and the supervisor drains the slot.
        *slot.lock() = batch;
        let (results, timing) =
            shared.stage.try_query_batch_timed(&queries, shared.clock.as_ref());
        let end_us = shared.clock.now_micros();
        let batch = std::mem::take(&mut *slot.lock());
        let size = batch.len() as u64;
        // Amortize the batch forward pass across its requests so the
        // shares sum exactly to the measured forward time: everyone gets
        // the integer share, the first `forward % size` positions absorb
        // the remainder microseconds.
        let (share, remainder) =
            (timing.forward_us / size.max(1), timing.forward_us % size.max(1));
        for (pos, (req, res)) in batch.into_iter().zip(results).enumerate() {
            let batch_share_us = share + u64::from((pos as u64) < remainder);
            let bfs_us = timing.bfs_us.get(pos).copied().unwrap_or(0);
            let span_us = end_us.saturating_sub(req.enqueue_us);
            let outcome =
                if res.is_ok() { TraceOutcome::Answered } else { TraceOutcome::QueryError };
            // Trace before replying: once the submitter observes the
            // answer, the trace is already queryable.
            finish_trace(
                shared,
                RequestTrace {
                    request_id: req.id,
                    tenant: req.tenant.clone(),
                    admitted_us: req.enqueue_us,
                    queue_wait_us: req.wait_us,
                    batch_size: size,
                    batch_position: pos as u64,
                    batch_share_us,
                    bfs_us,
                    span_us,
                    overhead_us: span_us
                        .saturating_sub(req.wait_us + batch_share_us + bfs_us),
                    outcome,
                    degraded,
                },
            );
            // A submitter that dropped its Pending no longer cares.
            let _ = req.reply.send(res.map_err(ServeError::Query));
        }
    }
}

/// Worker supervisor: runs the worker loop under `catch_unwind`. A
/// panic answers the parked batch with [`ServeError::WorkerPanicked`]
/// (zero lost replies), records the panic for the breaker, and restarts
/// the loop — the pool returns to full strength immediately. An `Ok`
/// return is the orderly shutdown drain finishing.
fn supervise_worker(shared: &Shared, idx: usize) {
    let Some(slot) = shared.in_flight.get(idx) else {
        return;
    };
    loop {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            worker_loop(shared, slot)
        }));
        match outcome {
            Ok(()) => return,
            Err(_) => {
                let dying: Vec<Request> = std::mem::take(&mut *slot.lock());
                let now = shared.clock.now_micros();
                let size = dying.len() as u64;
                for (pos, req) in dying.into_iter().enumerate() {
                    // The forward pass died mid-flight, so batch share
                    // and BFS are unattributable — the whole remainder
                    // of the span lands in overhead. Trace first, then
                    // reply, so a received reply implies the trace.
                    let span_us = now.saturating_sub(req.enqueue_us);
                    finish_trace(
                        shared,
                        RequestTrace {
                            request_id: req.id,
                            tenant: req.tenant.clone(),
                            admitted_us: req.enqueue_us,
                            queue_wait_us: req.wait_us,
                            batch_size: size,
                            batch_position: pos as u64,
                            batch_share_us: 0,
                            bfs_us: 0,
                            span_us,
                            overhead_us: span_us.saturating_sub(req.wait_us),
                            outcome: TraceOutcome::WorkerPanicked,
                            degraded: false,
                        },
                    );
                    let _ = req.reply.send(Err(ServeError::WorkerPanicked));
                }
                record_panic(shared);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdgnn_core::{AqdGnn, CsModel, GraphTensors, ModelConfig};
    use qdgnn_data::{presets, queries as qgen, AttrMode};
    use qdgnn_graph::attributed::AdjNorm;
    use qdgnn_obs::clock::FakeClock;

    /// Two stages over the *same* model and tensors (shared `Arc`s): one
    /// for the engine, one kept as the sequential reference.
    fn twin_stages() -> (OnlineStage<'static>, OnlineStage<'static>, Vec<Query>) {
        let data = presets::toy();
        let t = Arc::new(GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100));
        let queries = qgen::generate(&data, 24, 1, 2, AttrMode::FromCommunity, 7);
        let model: Arc<dyn CsModel> = Arc::new(AqdGnn::new(ModelConfig::fast(), t.d));
        let engine_stage = OnlineStage::new_shared(Arc::clone(&model), Arc::clone(&t), 0.5);
        let reference = OnlineStage::new_shared(model, t, 0.5);
        (engine_stage, reference, queries)
    }

    #[test]
    fn engine_answers_match_direct_stage_calls() {
        let (stage, reference, queries) = twin_stages();
        let engine = ServeEngine::new(
            stage,
            ServeConfig {
                max_batch: 8,
                max_wait_us: 200,
                queue_capacity: 64,
                workers: 1,
                ..ServeConfig::default()
            },
        )
        .expect("engine must start");
        let pending: Vec<Pending> = queries
            .iter()
            .map(|q| engine.submit(q.clone()).expect("queue has room"))
            .collect();
        for (q, p) in queries.iter().zip(pending) {
            let got = p.wait().expect("valid query must be served");
            let want = reference.try_query(q).expect("reference agrees the query is valid");
            assert_eq!(got, want, "engine answer must match the direct stage call");
        }
        assert_eq!(engine.stats(), EngineStats::default(), "clean run records no failures");
        engine.shutdown();
    }

    #[test]
    fn full_queue_rejects_and_shutdown_still_drains_accepted_work() {
        let (stage, _reference, queries) = twin_stages();
        // Frozen clock + oversized batch: workers can never flush, so the
        // queue fills deterministically.
        let clock = Arc::new(FakeClock::new());
        let engine = ServeEngine::with_clock(
            stage,
            ServeConfig {
                max_batch: 64,
                max_wait_us: 10_000,
                queue_capacity: 4,
                workers: 1,
                ..ServeConfig::default()
            },
            clock,
        )
        .expect("engine must start");
        let accepted: Vec<Pending> = queries
            .iter()
            .take(4)
            .map(|q| engine.submit(q.clone()).expect("queue has room"))
            .collect();
        assert_eq!(engine.queue_depth(), 4);
        match engine.submit(queries[4].clone()) {
            Err(ServeError::QueueFull { capacity }) => assert_eq!(capacity, 4),
            Err(other) => panic!("expected QueueFull, got {other:?}"),
            Ok(_) => panic!("expected QueueFull, got an accepted submission"),
        }
        // Graceful shutdown must answer every accepted request even with
        // the batching clock frozen.
        engine.shutdown();
        for p in accepted {
            assert!(p.wait().is_ok(), "accepted request lost in shutdown");
        }
        assert!(matches!(engine.submit(queries[0].clone()), Err(ServeError::ShuttingDown)));
    }

    #[test]
    fn shutdown_drains_multiple_batches_and_isolates_bad_queries() {
        let (stage, _reference, mut queries) = twin_stages();
        let n = stage.tensors().n as u32;
        queries.truncate(9);
        // Plant one malformed query mid-queue: it must fail alone.
        queries[4] = Query { vertices: vec![n + 3], attrs: vec![], truth: vec![] };
        let clock = Arc::new(FakeClock::new());
        let engine = ServeEngine::with_clock(
            stage,
            // max_batch 3 < 9 queued: the drain needs several flushes.
            ServeConfig {
                max_batch: 3,
                max_wait_us: 60_000_000,
                queue_capacity: 32,
                workers: 1,
                ..ServeConfig::default()
            },
            clock,
        )
        .expect("engine must start");
        let pending: Vec<Pending> = queries
            .iter()
            .map(|q| engine.submit(q.clone()).expect("queue has room"))
            .collect();
        engine.shutdown();
        for (i, p) in pending.into_iter().enumerate() {
            let reply = p.wait();
            if i == 4 {
                assert!(
                    matches!(reply, Err(ServeError::Query(_))),
                    "malformed query must fail with a typed query error"
                );
            } else {
                assert!(reply.is_ok(), "well-formed query {i} lost in shutdown drain");
            }
        }
    }

    #[test]
    fn fake_clock_pins_the_max_wait_deadline() {
        let (stage, _reference, queries) = twin_stages();
        let clock = Arc::new(FakeClock::new());
        let engine = ServeEngine::with_clock(
            stage,
            ServeConfig {
                max_batch: 8,
                max_wait_us: 500,
                queue_capacity: 16,
                workers: 1,
                ..ServeConfig::default()
            },
            Arc::clone(&clock) as Arc<dyn Clock>,
        )
        .expect("engine must start");
        let a = engine.submit(queries[0].clone()).expect("queue has room");
        let b = engine.submit(queries[1].clone()).expect("queue has room");
        // Real time passes, fake time does not: the partial batch must
        // not flush no matter how long we wait.
        std::thread::sleep(Duration::from_millis(30));
        assert!(a.try_wait().is_none(), "flushed before the injected-clock deadline");
        assert!(b.try_wait().is_none(), "flushed before the injected-clock deadline");
        // One tick short of the deadline: still queued.
        clock.advance_micros(499);
        std::thread::sleep(Duration::from_millis(30));
        assert!(a.try_wait().is_none(), "flushed one microsecond early");
        // Crossing the deadline releases the batch promptly.
        clock.advance_micros(1);
        let ra = a.wait_timeout(Duration::from_secs(30)).expect("deadline crossed, must flush");
        let rb = b.wait_timeout(Duration::from_secs(30)).expect("deadline crossed, must flush");
        assert!(ra.is_ok() && rb.is_ok());
        engine.shutdown();
    }

    #[test]
    fn expired_requests_are_shed_at_dequeue_with_exact_accounting() {
        let (stage, _reference, queries) = twin_stages();
        let clock = Arc::new(FakeClock::new());
        let engine = ServeEngine::with_clock(
            stage,
            ServeConfig {
                max_batch: 8,
                max_wait_us: 1_000,
                queue_capacity: 16,
                workers: 1,
                ..ServeConfig::default()
            },
            Arc::clone(&clock) as Arc<dyn Clock>,
        )
        .expect("engine must start");
        // Two requests with a 500µs budget, one without. Clock frozen:
        // nothing flushes, nothing sheds.
        let a = engine
            .submit_with_deadline(queries[0].clone(), Some(Duration::from_micros(500)))
            .expect("queue has room");
        let b = engine
            .submit_with_deadline(queries[1].clone(), Some(Duration::from_micros(500)))
            .expect("queue has room");
        let c = engine.submit(queries[2].clone()).expect("queue has room");
        std::thread::sleep(Duration::from_millis(10));
        assert!(a.try_wait().is_none() && b.try_wait().is_none() && c.try_wait().is_none());
        // Crossing the 500µs budgets (but not the 1000µs batch wait):
        // the worker sheds exactly the deadline'd pair at dequeue time.
        clock.advance_micros(600);
        let ra = a.wait_timeout(Duration::from_secs(30)).expect("shed reply must arrive");
        let rb = b.wait_timeout(Duration::from_secs(30)).expect("shed reply must arrive");
        for r in [ra, rb] {
            match r {
                Err(ServeError::DeadlineExceeded { waited_us, deadline_us }) => {
                    assert_eq!(deadline_us, 500);
                    assert_eq!(waited_us, 600, "shed wait is measured on the engine clock");
                }
                other => panic!("expected DeadlineExceeded, got {other:?}"),
            }
        }
        // The no-deadline request is untouched and still flushes on the
        // batch deadline.
        assert!(c.try_wait().is_none(), "no-deadline request must not be shed");
        clock.advance_micros(400);
        assert!(c.wait_timeout(Duration::from_secs(30)).expect("batch deadline flush").is_ok());
        let stats = engine.stats();
        assert_eq!(stats.shed_deadline, 2, "exactly the two expired requests are shed");
        assert_eq!(stats.shed_admission, 0);
        assert_eq!(stats.worker_panics, 0);
        engine.shutdown();
    }

    #[test]
    fn admission_sheds_when_estimated_wait_exceeds_budget() {
        let (stage, _reference, queries) = twin_stages();
        let clock = Arc::new(FakeClock::new());
        let engine = ServeEngine::with_clock(
            stage,
            ServeConfig {
                max_batch: 64,
                max_wait_us: 50_000,
                queue_capacity: 16,
                workers: 1,
                ..ServeConfig::default()
            },
            Arc::clone(&clock) as Arc<dyn Clock>,
        )
        .expect("engine must start");
        // Teach the estimator that queue waits are huge: four requests
        // that sit 100ms (fake) before their batch flushes.
        let slow: Vec<Pending> = queries
            .iter()
            .take(4)
            .map(|q| engine.submit(q.clone()).expect("queue has room"))
            .collect();
        clock.advance_micros(100_000);
        for p in slow {
            assert!(p.wait_timeout(Duration::from_secs(30)).expect("flush").is_ok());
        }
        // Keep the queue non-empty (admission shedding is moot on an
        // empty queue), then offer a request whose 1ms budget the
        // estimator already knows cannot be met.
        let parked = engine.submit(queries[4].clone()).expect("queue has room");
        match engine.submit_with_deadline(queries[5].clone(), Some(Duration::from_micros(1_000))) {
            Err(ServeError::DeadlineExceeded { waited_us, deadline_us }) => {
                assert_eq!(waited_us, 0, "admission-tier sheds never entered the queue");
                assert_eq!(deadline_us, 1_000);
            }
            Err(other) => panic!("expected admission-tier DeadlineExceeded, got {other:?}"),
            Ok(_) => panic!("expected admission-tier DeadlineExceeded, got an admission"),
        }
        let stats = engine.stats();
        assert_eq!(stats.shed_admission, 1);
        assert_eq!(stats.shed_deadline, 0);
        // A deadline the estimator can meet is still admitted.
        let ok = engine
            .submit_with_deadline(queries[6].clone(), Some(Duration::from_secs(600)))
            .expect("generous deadline must be admitted");
        engine.shutdown();
        assert!(parked.wait().is_ok());
        assert!(ok.wait().is_ok());
    }

    #[test]
    fn pending_wait_is_bounded_by_the_request_deadline() {
        let (stage, _reference, queries) = twin_stages();
        // Frozen clock, oversized batch: the engine is effectively
        // stalled. The caller-side backstop must still return.
        let clock = Arc::new(FakeClock::new());
        let engine = ServeEngine::with_clock(
            stage,
            ServeConfig {
                max_batch: 64,
                max_wait_us: 60_000_000,
                queue_capacity: 16,
                workers: 1,
                ..ServeConfig::default()
            },
            clock,
        )
        .expect("engine must start");
        let p = engine
            .submit_with_deadline(queries[0].clone(), Some(Duration::from_millis(50)))
            .expect("queue has room");
        let t0 = std::time::Instant::now();
        match p.wait() {
            Err(ServeError::DeadlineExceeded { .. }) => {}
            other => panic!("stalled engine must surface DeadlineExceeded, got {other:?}"),
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "wait() must not block far past the deadline budget"
        );
        engine.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_is_safe_after_it() {
        let (stage, _reference, queries) = twin_stages();
        let engine = ServeEngine::new(stage, ServeConfig::default()).expect("engine must start");
        let reply = engine.query_blocking(queries[0].clone());
        assert!(reply.is_ok());
        engine.shutdown();
        engine.shutdown();
        // Drop runs shutdown a third time.
    }
}
