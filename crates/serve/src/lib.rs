//! `qdgnn-serve` — a thread-based batching serving engine over the
//! online community-search stage.
//!
//! The online stage answers one query with one query-branch forward pass
//! plus a constrained BFS. Under concurrent load, running those forward
//! passes one at a time wastes the structure of the model: the per-layer
//! dense ops are identical across queries and can be stacked into one
//! matmul. This crate turns that observation into a serving engine:
//!
//! * [`ServeEngine`] owns an `OnlineStage<'static>` and a pool of worker
//!   threads;
//! * [`ServeEngine::submit`] enqueues a query on a **bounded** queue —
//!   overload rejects with [`ServeError::QueueFull`] (backpressure),
//!   never blocks the submitter;
//! * workers drain up to [`ServeConfig::max_batch`] requests — flushing
//!   early once the oldest has waited [`ServeConfig::max_wait_us`] — into
//!   one stacked `try_query_batch` call, bit-identical per query to the
//!   sequential path;
//! * [`ServeEngine::shutdown`] (or `Drop`) stops admissions and drains
//!   every accepted request before returning: exactly one reply per
//!   accepted submission, always.
//!
//! The engine is built to stay correct under overload and partial
//! failure, not just under happy-path load:
//!
//! * requests can carry **deadlines** ([`ServeConfig::deadline_us`] or
//!   [`ServeEngine::submit_with_deadline`]); expired requests are shed
//!   with a typed [`ServeError::DeadlineExceeded`] at dequeue time, and
//!   admission rejects outright once the engine's queue-wait estimate
//!   already exceeds the budget (two-tier load shedding);
//! * workers are **supervised**: a panicking batch answers every
//!   in-flight request with [`ServeError::WorkerPanicked`] and the
//!   worker restarts — no reply is ever lost, the pool never shrinks;
//! * repeated panics trip a **circuit breaker** into degraded
//!   single-query (batch = 1) mode so a poisoned query cannot keep
//!   taking out co-batched neighbors ([`ServeEngine::is_degraded`],
//!   [`ServeEngine::stats`]).
//!
//! The flush decision itself is the pure [`BatchPolicy`], driven by an
//! injected clock so tests can pin deadline, shedding, and breaker
//! behaviour with a fake clock.
//!
//! ```no_run
//! use std::sync::Arc;
//! use qdgnn_core::{AqdGnn, CsModel, GraphTensors, ModelConfig, OnlineStage};
//! use qdgnn_data::presets;
//! use qdgnn_graph::attributed::AdjNorm;
//! use qdgnn_serve::{ServeConfig, ServeEngine};
//!
//! let data = presets::toy();
//! let tensors = Arc::new(GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100));
//! let model: Arc<dyn CsModel> = Arc::new(AqdGnn::new(ModelConfig::fast(), tensors.d));
//! let stage = OnlineStage::new_shared(model, tensors, 0.5);
//! let engine = ServeEngine::new(stage, ServeConfig::default())?;
//! let community = engine.query_blocking(qdgnn_data::Query {
//!     vertices: vec![0],
//!     attrs: vec![],
//!     truth: vec![],
//! })?;
//! engine.shutdown();
//! # Ok::<(), qdgnn_serve::ServeError>(())
//! ```

#![warn(missing_docs)]

pub mod batcher;
pub mod config;
pub mod engine;
pub mod error;
pub mod http;
pub mod trace;

pub use batcher::{BatchDecision, BatchPolicy};
pub use config::ServeConfig;
pub use engine::{EngineStats, Pending, ServeEngine};
pub use error::ServeError;
pub use http::TelemetryServer;
pub use trace::{ExemplarRing, RequestTrace, TraceOutcome};
