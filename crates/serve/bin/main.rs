//! `qdgnn-serve` — demo driver for the batching serving engine.
//!
//! Trains a bench-scale AQD-GNN on a preset dataset, stands up a
//! [`ServeEngine`] over the trained online stage, and fires a closed-loop
//! multi-client workload at it, reporting throughput and (with `--features
//! obs`) the engine's metrics snapshot.
//!
//! ```text
//! qdgnn-serve [--preset NAME] [--clients N] [--queries N]
//!             [--max-batch N] [--max-wait-us N] [--workers N]
//!             [--deadline-us N] [--overload]
//!             [--telemetry ADDR] [--linger-secs N]
//!             [--epochs N] [--seq] [--metrics]
//! ```
//!
//! `--seq` serves the same workload sequentially through the stage
//! (no engine, one query at a time) for an in-place comparison.
//!
//! `--deadline-us N` arms a per-request deadline: requests the engine
//! cannot serve within the budget are shed with a typed
//! `DeadlineExceeded` (reported as "shed", not failures). `--overload`
//! demos graceful degradation: it quadruples the client count and, if no
//! deadline was given, calibrates one to ~3 batches of measured service
//! time — expect a visible-but-partial shed rate while accepted
//! requests stay inside the budget.
//!
//! `--telemetry ADDR` binds the scrapeable telemetry listener
//! (`/metrics`, `/healthz`, `/traces`) on `ADDR` (e.g.
//! `127.0.0.1:9100`) for the life of the run; `--linger-secs N` keeps
//! the engine and listener up for N seconds after the workload drains,
//! so an external scraper can read the final counters before the clean
//! shutdown. Each client thread submits under its own tenant label
//! (`client-0`, `client-1`, …), so `/metrics` shows the per-tenant
//! `qdgnn_serve_tenant_request` breakdown.

use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qdgnn_core::{AqdGnn, CsModel, GraphTensors, ModelConfig, OnlineStage, TrainConfig, Trainer};
use qdgnn_data::{presets, queries as qgen, AttrMode, Dataset, Query, QuerySplit};
use qdgnn_graph::attributed::AdjNorm;
use qdgnn_serve::{ServeConfig, ServeEngine, ServeError, TelemetryServer};

struct Args {
    preset: String,
    clients: usize,
    queries: usize,
    epochs: usize,
    sequential: bool,
    metrics: bool,
    overload: bool,
    telemetry: Option<String>,
    linger_secs: u64,
    cfg: ServeConfig,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            preset: "cornell".to_string(),
            clients: 8,
            queries: 200,
            epochs: 10,
            sequential: false,
            metrics: false,
            overload: false,
            telemetry: None,
            linger_secs: 0,
            cfg: ServeConfig::default(),
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next().ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--preset" => args.preset = value("--preset")?,
                "--clients" => args.clients = parse_num(&value("--clients")?)?,
                "--queries" => args.queries = parse_num(&value("--queries")?)?,
                "--epochs" => args.epochs = parse_num(&value("--epochs")?)?,
                "--max-batch" => args.cfg.max_batch = parse_num(&value("--max-batch")?)?,
                "--max-wait-us" => args.cfg.max_wait_us = parse_num(&value("--max-wait-us")?)? as u64,
                "--workers" => args.cfg.workers = parse_num(&value("--workers")?)?,
                "--queue-capacity" => args.cfg.queue_capacity = parse_num(&value("--queue-capacity")?)?,
                "--deadline-us" => args.cfg.deadline_us = parse_num(&value("--deadline-us")?)? as u64,
                "--overload" => args.overload = true,
                "--seq" => args.sequential = true,
                "--metrics" => args.metrics = true,
                "--telemetry" => args.telemetry = Some(value("--telemetry")?),
                "--linger-secs" => args.linger_secs = parse_num(&value("--linger-secs")?)? as u64,
                "--help" | "-h" => {
                    println!(
                        "qdgnn-serve [--preset NAME] [--clients N] [--queries N] \
                         [--max-batch N] [--max-wait-us N] [--workers N] \
                         [--queue-capacity N] [--deadline-us N] [--overload] \
                         [--telemetry ADDR] [--linger-secs N] \
                         [--epochs N] [--seq] [--metrics]"
                    );
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if args.overload {
            // Overload demo: oversubscribe the engine. The deadline is
            // calibrated from measured service time after training (a
            // fixed number would be all-shed or no-shed depending on
            // the machine) unless --deadline-us pinned one explicitly.
            args.clients = (args.clients * 4).max(16);
        }
        Ok(args)
    }
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("not a number: {s}"))
}

fn preset_by_name(name: &str) -> Result<Dataset, String> {
    Ok(match name {
        "toy" => presets::toy(),
        "cornell" => presets::cornell(),
        "texas" => presets::texas(),
        "washington" => presets::washington(),
        "wisconsin" => presets::wisconsin(),
        "fb_414" => presets::fb_414(),
        "fb_686" => presets::fb_686(),
        "fb_107" => presets::fb_107(),
        other => return Err(format!("unknown preset {other}")),
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("qdgnn-serve: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args = Args::parse()?;
    let data = preset_by_name(&args.preset)?;
    println!(
        "preset {}: {} vertices, {} attributes",
        args.preset,
        data.graph.num_vertices(),
        data.graph.num_attrs()
    );

    let tensors = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
    let all = qgen::generate(&data, 60, 1, 3, AttrMode::FromCommunity, 17);
    let split = QuerySplit::new(all, 30, 15, 15);
    println!("training AQD-GNN ({} epochs)…", args.epochs);
    let t0 = Instant::now();
    let trained = Trainer::new(TrainConfig { epochs: args.epochs, ..TrainConfig::fast() }).train(
        AqdGnn::new(ModelConfig::fast(), tensors.d),
        &tensors,
        &split.train,
        &split.val,
    );
    println!(
        "trained in {:.1}s, gamma {:.3}, val F1 {:.3}",
        t0.elapsed().as_secs_f64(),
        trained.gamma,
        trained.report.best_val_f1
    );

    // Round-robin the test queries up to the requested workload size.
    let workload: Vec<Query> = split
        .test
        .iter()
        .cycle()
        .take(args.queries)
        .cloned()
        .collect();
    if workload.is_empty() {
        return Err("empty workload".to_string());
    }

    let model: Arc<dyn CsModel> = Arc::new(trained.model);
    let tensors = Arc::new(tensors);
    let stage = OnlineStage::new_shared(model, tensors, trained.gamma);

    let mut cfg = args.cfg.clone();
    if args.overload && cfg.deadline_us == 0 {
        // Calibrate the demo deadline to ~3 batches of measured service
        // time, so the oversubscribed closed loop sheds a visible-but-
        // partial fraction of the load on any machine.
        let probe: Vec<&Query> = workload.iter().take(32).collect();
        let t = Instant::now();
        let mut timed = 0usize;
        for q in &probe {
            if stage.try_query(q).is_ok() {
                timed += 1;
            }
        }
        let per_query_us = t.elapsed().as_micros() as u64 / timed.max(1) as u64;
        cfg.deadline_us = (3 * cfg.max_batch as u64 * per_query_us).max(2_000);
        println!(
            "overload: calibrated deadline {}µs (~3 batches at {}µs/query)",
            cfg.deadline_us, per_query_us
        );
    }

    if args.sequential {
        let t0 = Instant::now();
        let mut served = 0usize;
        for q in &workload {
            match stage.try_query(q) {
                Ok(_) => served += 1,
                Err(e) => eprintln!("query rejected: {e}"),
            }
        }
        report("sequential", served, 0, t0.elapsed());
        return Ok(());
    }

    println!(
        "engine: max_batch {}, max_wait {}µs, {} worker(s), {} client(s), deadline {}",
        cfg.max_batch,
        cfg.max_wait_us,
        cfg.workers,
        args.clients,
        if cfg.deadline_us == 0 {
            "off".to_string()
        } else {
            format!("{}µs", cfg.deadline_us)
        }
    );
    let engine = Arc::new(ServeEngine::new(stage, cfg.clone()).map_err(|e| e.to_string())?);
    let mut telemetry = match &args.telemetry {
        Some(addr) => {
            let server =
                TelemetryServer::start(Arc::clone(&engine), addr).map_err(|e| e.to_string())?;
            println!(
                "telemetry: http://{0}/metrics /healthz /traces (try `curl http://{0}/metrics`)",
                server.addr()
            );
            Some(server)
        }
        None => None,
    };
    // Each client thread submits under its own tenant label so the
    // per-tenant series shows up on /metrics.
    let deadline = (cfg.deadline_us > 0).then(|| Duration::from_micros(cfg.deadline_us));
    let served = AtomicUsize::new(0);
    let rejected = AtomicUsize::new(0);
    let shed = AtomicUsize::new(0);
    let clients = args.clients.max(1);
    let backoff_us = cfg.deadline_us.max(200);
    let t0 = Instant::now();
    let scope_result = crossbeam::thread::scope(|s| {
        for (c, chunk) in chunked(&workload, clients).into_iter().enumerate() {
            let engine = &engine;
            let served = &served;
            let rejected = &rejected;
            let shed = &shed;
            s.spawn(move |_| {
                let tenant = format!("client-{c}");
                for q in chunk {
                    // Closed loop with bounded retry on backpressure.
                    loop {
                        match engine.submit_labeled(q.clone(), Some(&tenant), deadline) {
                            Ok(pending) => {
                                match pending.wait() {
                                    Ok(_) => served.fetch_add(1, Ordering::Relaxed),
                                    // Deadline sheds are the engine doing
                                    // its job under overload, not errors.
                                    Err(ServeError::DeadlineExceeded { .. }) => {
                                        shed.fetch_add(1, Ordering::Relaxed)
                                    }
                                    Err(e) => {
                                        eprintln!("client {c}: query failed: {e}");
                                        rejected.fetch_add(1, Ordering::Relaxed)
                                    }
                                };
                                break;
                            }
                            Err(ServeError::DeadlineExceeded { .. }) => {
                                // Admission-tier shed: back off a deadline
                                // before re-offering, like a real client.
                                shed.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_micros(backoff_us));
                                break;
                            }
                            Err(ServeError::QueueFull { .. }) => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(e) => {
                                eprintln!("client {c}: submit failed: {e}");
                                break;
                            }
                        }
                    }
                }
            });
        }
    });
    if scope_result.is_err() {
        return Err("client thread panicked".to_string());
    }
    let elapsed = t0.elapsed();
    if args.linger_secs > 0 {
        // Keep the engine (and the telemetry listener) up so an
        // external scraper can read the final counters before the
        // clean shutdown.
        println!("lingering {}s for scrapers…", args.linger_secs);
        std::thread::sleep(Duration::from_secs(args.linger_secs));
    }
    engine.shutdown();
    if let Some(server) = telemetry.as_mut() {
        server.shutdown();
        println!("telemetry: stopped");
    }
    report(
        "batched",
        served.load(Ordering::Relaxed),
        rejected.load(Ordering::Relaxed),
        elapsed,
    );
    let stats = engine.stats();
    println!(
        "shedding: {} shed at client ({} admission-tier, {} dequeue-tier), {} worker panic(s), {} breaker trip(s), degraded: {}",
        shed.load(Ordering::Relaxed),
        stats.shed_admission,
        stats.shed_deadline,
        stats.worker_panics,
        stats.breaker_trips,
        stats.degraded
    );

    if args.metrics {
        if qdgnn_obs::enabled() {
            println!("{}", qdgnn_obs::snapshot().to_json());
        } else {
            println!("(metrics requested but the obs feature is off; rebuild with --features obs)");
        }
    }
    Ok(())
}

/// Splits `items` into `parts` contiguous chunks (sizes differing by at
/// most one), for one chunk per client thread.
fn chunked(items: &[Query], parts: usize) -> Vec<&[Query]> {
    let per = items.len().div_ceil(parts.max(1)).max(1);
    items.chunks(per).collect()
}

fn report(mode: &str, served: usize, rejected: usize, elapsed: Duration) {
    let qps = served as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "{mode}: {served} served, {rejected} rejections/retries, {:.2}s total, {qps:.0} QPS",
        elapsed.as_secs_f64()
    );
}
