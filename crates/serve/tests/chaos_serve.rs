//! Chaos suite for the serving engine (requires `--features chaos`).
//!
//! Every test here proves the same invariant from a different failure
//! angle: **no accepted request ever loses its reply**. Worker panics,
//! stalls, allocation failures, expired deadlines, and shutdown races
//! all resolve each `Pending` handle with either a result or a typed
//! error, and the engine's failure accounting matches the injected
//! fault count exactly.
//!
//! The fault registry in `qdgnn_core::faultless` is process-global, so
//! the tests serialize on [`chaos_lock`] and reset the registry at the
//! start of each test.

#![cfg(feature = "chaos")]

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use qdgnn_core::faultless::{self, ServeFault};
use qdgnn_core::{AqdGnn, CsModel, GraphTensors, ModelConfig, OnlineStage};
use qdgnn_data::{presets, queries as qgen, AttrMode, Query};
use qdgnn_graph::attributed::AdjNorm;
use qdgnn_obs::clock::{Clock, FakeClock};
use qdgnn_serve::{Pending, ServeConfig, ServeEngine, ServeError};

/// Serializes chaos tests: the fault registry is process-global.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn stage_and_queries() -> (OnlineStage<'static>, Vec<Query>) {
    let data = presets::toy();
    let t = Arc::new(GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100));
    let queries = qgen::generate(&data, 24, 1, 2, AttrMode::FromCommunity, 7);
    let model: Arc<dyn CsModel> = Arc::new(AqdGnn::new(ModelConfig::fast(), t.d));
    (OnlineStage::new_shared(model, t, 0.5), queries)
}

fn engine_with_fake_clock(cfg: ServeConfig) -> (ServeEngine, Arc<FakeClock>) {
    let (stage, _) = stage_and_queries();
    let clock = Arc::new(FakeClock::new());
    let engine = ServeEngine::with_clock(stage, cfg, Arc::clone(&clock) as Arc<dyn Clock>)
        .expect("engine must start");
    (engine, clock)
}

fn wait_all(pending: Vec<Pending>) -> Vec<Result<Vec<u32>, ServeError>> {
    pending
        .into_iter()
        .map(|p| p.wait_timeout(Duration::from_secs(60)).expect("no reply may be lost"))
        .collect()
}

/// The acceptance-criteria test: a panic mid-batch loses zero replies,
/// the pool returns to full strength, and the panic/shed counters match
/// the injected fault count exactly.
#[test]
fn panic_mid_batch_answers_every_cobatched_request_and_pool_recovers() {
    let _guard = chaos_lock();
    faultless::reset_serve_calls();
    let (stage, queries) = stage_and_queries();
    let clock = Arc::new(FakeClock::new());
    let engine = ServeEngine::with_clock(
        stage,
        ServeConfig {
            max_batch: 4,
            max_wait_us: 100,
            queue_capacity: 64,
            workers: 1,
            // Threshold above the injected count: this test wants the
            // panic absorbed without tripping the breaker.
            panic_threshold: 5,
            ..ServeConfig::default()
        },
        Arc::clone(&clock) as Arc<dyn Clock>,
    )
    .expect("engine must start");

    // First batched forward dies; everything after succeeds.
    faultless::inject_serve_fault_at_call(1, ServeFault::PanicInForward);

    // Batch 1: four co-batched requests, all doomed together.
    let doomed: Vec<Pending> = queries
        .iter()
        .take(4)
        .map(|q| engine.submit(q.clone()).expect("queue has room"))
        .collect();
    clock.advance_micros(200); // cross max_wait: flush the batch of 4
    for reply in wait_all(doomed) {
        assert!(
            matches!(reply, Err(ServeError::WorkerPanicked)),
            "every co-batched request of a dying batch gets the typed panic reply"
        );
    }

    // Pool back to full strength: the respawned worker serves new work.
    let revived: Vec<Pending> = queries
        .iter()
        .skip(4)
        .take(4)
        .map(|q| engine.submit(q.clone()).expect("engine accepts work after the panic"))
        .collect();
    clock.advance_micros(200);
    for reply in wait_all(revived) {
        assert!(reply.is_ok(), "respawned worker must serve normally");
    }

    let stats = engine.stats();
    assert_eq!(stats.worker_panics, 1, "exactly the injected fault count");
    assert_eq!(stats.shed_deadline + stats.shed_admission, 0, "nothing was shed");
    assert_eq!(stats.breaker_trips, 0, "one panic stays below the threshold");
    assert!(!stats.degraded);
    assert_eq!(faultless::pending_serve(), 0, "the armed fault fired");
    engine.shutdown();
}

/// An allocation-failure panic is supervised identically to any other
/// panic: typed replies, restarted worker, exact accounting.
#[test]
fn alloc_failure_is_absorbed_like_any_panic() {
    let _guard = chaos_lock();
    faultless::reset_serve_calls();
    let (engine, clock) = engine_with_fake_clock(ServeConfig {
        max_batch: 2,
        max_wait_us: 100,
        queue_capacity: 16,
        workers: 1,
        panic_threshold: 5,
        ..ServeConfig::default()
    });
    let (_, queries) = stage_and_queries();
    faultless::inject_serve_fault_at_call(1, ServeFault::AllocFailure);
    let doomed: Vec<Pending> = queries
        .iter()
        .take(2)
        .map(|q| engine.submit(q.clone()).expect("queue has room"))
        .collect();
    clock.advance_micros(200);
    for reply in wait_all(doomed) {
        assert!(matches!(reply, Err(ServeError::WorkerPanicked)));
    }
    let ok = engine.submit(queries[2].clone()).expect("engine alive");
    clock.advance_micros(200);
    assert!(ok.wait_timeout(Duration::from_secs(60)).expect("no reply lost").is_ok());
    assert_eq!(engine.stats().worker_panics, 1);
    engine.shutdown();
}

/// A stalled forward pass makes requests queued behind it miss their
/// deadlines; they are shed with typed errors, not served late.
#[test]
fn stall_in_forward_sheds_queued_requests_past_their_deadline() {
    let _guard = chaos_lock();
    faultless::reset_serve_calls();
    let (engine, clock) = engine_with_fake_clock(ServeConfig {
        max_batch: 1,
        max_wait_us: 0, // flush immediately: one request per forward
        queue_capacity: 16,
        workers: 1,
        ..ServeConfig::default()
    });
    let (_, queries) = stage_and_queries();
    // The first forward stalls 50ms of real time. While the worker is
    // stuck inside it, advance the fake clock past the deadlines of the
    // requests queued behind it.
    faultless::inject_serve_fault_at_call(1, ServeFault::StallForwardMicros(50_000));
    let stalled = engine.submit(queries[0].clone()).expect("queue has room");
    let behind: Vec<Pending> = queries
        .iter()
        .skip(1)
        .take(3)
        .map(|q| {
            engine
                .submit_with_deadline(q.clone(), Some(Duration::from_micros(500)))
                .expect("queue has room")
        })
        .collect();
    clock.advance_micros(1_000); // expire the 500µs budgets behind the stall
    assert!(
        stalled.wait_timeout(Duration::from_secs(60)).expect("no reply lost").is_ok(),
        "the stalled request itself still completes"
    );
    for reply in wait_all(behind) {
        assert!(
            matches!(reply, Err(ServeError::DeadlineExceeded { .. })),
            "requests stuck behind the stall are shed, not served late"
        );
    }
    let stats = engine.stats();
    assert_eq!(stats.shed_deadline, 3, "exactly the three expired requests");
    assert_eq!(stats.worker_panics, 0, "a stall is not a panic");
    engine.shutdown();
}

/// Repeated panics trip the breaker into degraded single-query mode;
/// a poisoned query then takes out only itself, and a quiet cooldown
/// restores batching.
#[test]
fn breaker_trips_into_degraded_mode_and_recovers_after_cooldown() {
    let _guard = chaos_lock();
    faultless::reset_serve_calls();
    let (engine, clock) = engine_with_fake_clock(ServeConfig {
        max_batch: 2,
        max_wait_us: 100,
        queue_capacity: 64,
        workers: 1,
        panic_threshold: 2,
        panic_window_us: 10_000_000,
        breaker_cooldown_us: 1_000_000,
        ..ServeConfig::default()
    });
    let (_, queries) = stage_and_queries();

    // Two panicking batches in quick succession trip the breaker.
    faultless::inject_serve_fault_at_call(1, ServeFault::PanicInForward);
    faultless::inject_serve_fault_at_call(2, ServeFault::PanicInForward);
    for round in 0..2 {
        let doomed: Vec<Pending> = queries
            .iter()
            .skip(round * 2)
            .take(2)
            .map(|q| engine.submit(q.clone()).expect("queue has room"))
            .collect();
        clock.advance_micros(200);
        for reply in wait_all(doomed) {
            assert!(matches!(reply, Err(ServeError::WorkerPanicked)));
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.worker_panics, 2);
    assert_eq!(stats.breaker_trips, 1, "threshold 2 trips on the second panic");
    assert!(stats.degraded, "breaker holds the engine in degraded mode");
    assert!(engine.is_degraded());

    // Degraded mode: the third injected panic hits a single-query batch,
    // so exactly one request dies while its would-be neighbor survives.
    faultless::inject_serve_fault_at_call(3, ServeFault::PanicInForward);
    let a = engine.submit(queries[4].clone()).expect("degraded engine still accepts");
    let b = engine.submit(queries[5].clone()).expect("degraded engine still accepts");
    let ra = a.wait_timeout(Duration::from_secs(60)).expect("no reply lost");
    let rb = b.wait_timeout(Duration::from_secs(60)).expect("no reply lost");
    assert!(
        matches!(ra, Err(ServeError::WorkerPanicked)),
        "the poisoned single-query batch dies alone"
    );
    assert!(rb.is_ok(), "degraded mode isolates the blast radius to one request");
    assert_eq!(engine.stats().worker_panics, 3);

    // A quiet cooldown (measured on the engine clock from the last
    // panic) closes the breaker and batching resumes.
    clock.advance_micros(1_000_001);
    assert!(!engine.is_degraded(), "cooldown elapsed: breaker closes");
    let healed: Vec<Pending> = queries
        .iter()
        .skip(6)
        .take(2)
        .map(|q| engine.submit(q.clone()).expect("queue has room"))
        .collect();
    clock.advance_micros(200);
    for reply in wait_all(healed) {
        assert!(reply.is_ok());
    }
    engine.shutdown();
}

/// Regression for the PR-6 reply-loss bug: shutdown right after a
/// mid-batch panic must still answer every submitter (the in-flight
/// batch is drained by supervision, the queue by the workers, and the
/// final assert-drain proves nothing leaked).
#[test]
fn shutdown_after_mid_batch_panic_loses_no_submitter() {
    let _guard = chaos_lock();
    faultless::reset_serve_calls();
    let (engine, clock) = engine_with_fake_clock(ServeConfig {
        max_batch: 4,
        max_wait_us: 100,
        queue_capacity: 64,
        workers: 1,
        panic_threshold: 5,
        ..ServeConfig::default()
    });
    let (_, queries) = stage_and_queries();
    faultless::inject_serve_fault_at_call(1, ServeFault::PanicInForward);
    // Eight submitters: the first four die with the panicking batch,
    // the rest ride the shutdown drain through the respawned worker.
    let pending: Vec<Pending> = queries
        .iter()
        .take(8)
        .map(|q| engine.submit(q.clone()).expect("queue has room"))
        .collect();
    clock.advance_micros(200);
    engine.shutdown();
    let mut panicked = 0;
    let mut served = 0;
    for reply in wait_all(pending) {
        match reply {
            Err(ServeError::WorkerPanicked) => panicked += 1,
            Ok(_) => served += 1,
            other => panic!("unexpected reply after shutdown: {other:?}"),
        }
    }
    assert_eq!(panicked, 4, "exactly the co-batched four die with the panic");
    assert_eq!(served, 4, "the drain serves everyone else");
    assert_eq!(engine.stats().worker_panics, 1);
}

/// Deadline accounting under chaos is exact: obs counters (when the
/// metrics feature rides along) agree with the engine's own stats.
#[test]
fn shed_accounting_matches_obs_counters_when_enabled() {
    let _guard = chaos_lock();
    faultless::reset_serve_calls();
    let (engine, clock) = engine_with_fake_clock(ServeConfig {
        max_batch: 8,
        max_wait_us: 10_000,
        queue_capacity: 16,
        workers: 1,
        ..ServeConfig::default()
    });
    let (_, queries) = stage_and_queries();
    let before = qdgnn_obs::snapshot();
    let before_shed = before.counter("serve.shed").unwrap_or(0);
    let before_dl = before.counter("serve.deadline_exceeded").unwrap_or(0);
    let doomed: Vec<Pending> = queries
        .iter()
        .take(3)
        .map(|q| {
            engine
                .submit_with_deadline(q.clone(), Some(Duration::from_micros(100)))
                .expect("queue has room")
        })
        .collect();
    clock.advance_micros(5_000); // past the budgets, before the batch wait
    for reply in wait_all(doomed) {
        assert!(matches!(reply, Err(ServeError::DeadlineExceeded { .. })));
    }
    let stats = engine.stats();
    assert_eq!(stats.shed_deadline, 3);
    if qdgnn_obs::enabled() {
        let after = qdgnn_obs::snapshot();
        assert_eq!(after.counter("serve.shed").unwrap_or(0) - before_shed, 3);
        assert_eq!(after.counter("serve.deadline_exceeded").unwrap_or(0) - before_dl, 3);
    }
    engine.shutdown();
}

/// A request whose batch dies mid-forward still gets a **complete**
/// request trace: outcome `worker_panicked`, the queue wait it actually
/// paid (stamped at flush, before the panic), its batch size and
/// position, and the phase identity intact — plus the labeled metric
/// mirror when obs rides along.
#[test]
fn worker_panic_yields_complete_traces_with_panicked_outcome() {
    use qdgnn_serve::TraceOutcome;

    let _guard = chaos_lock();
    faultless::reset_serve_calls();
    // max_batch above the submitted pair: the flush is released by the
    // max_wait crossing, so the stamped queue wait is exactly the fake
    // clock advance.
    let (engine, clock) = engine_with_fake_clock(ServeConfig {
        max_batch: 4,
        max_wait_us: 100,
        queue_capacity: 16,
        workers: 1,
        panic_threshold: 5,
        ..ServeConfig::default()
    });
    let (_, queries) = stage_and_queries();
    let before_panicked = qdgnn_obs::snapshot()
        .counter("serve.request{outcome=\"worker_panicked\"}")
        .unwrap_or(0);
    faultless::inject_serve_fault_at_call(1, ServeFault::PanicInForward);
    let doomed: Vec<Pending> = queries
        .iter()
        .take(2)
        .map(|q| {
            engine
                .submit_labeled(q.clone(), Some("acme"), None)
                .expect("queue has room")
        })
        .collect();
    clock.advance_micros(200); // cross max_wait: flush the doomed pair
    for reply in wait_all(doomed) {
        assert!(matches!(reply, Err(ServeError::WorkerPanicked)));
    }
    // Replies are sent after the traces are recorded, so the exemplars
    // are already complete here.
    let mut seen = std::collections::BTreeSet::new();
    let panicked: Vec<_> = engine
        .exemplars()
        .into_iter()
        .filter(|t| t.outcome == TraceOutcome::WorkerPanicked && seen.insert(t.request_id))
        .collect();
    assert_eq!(panicked.len(), 2, "both co-batched requests must leave panicked traces");
    let mut positions: Vec<u64> = panicked.iter().map(|t| t.batch_position).collect();
    positions.sort_unstable();
    assert_eq!(positions, vec![0, 1]);
    for t in &panicked {
        assert_eq!(t.batch_size, 2, "the dying batch's size must be attributed");
        assert_eq!(t.queue_wait_us, 200, "queue wait was stamped at flush, before the panic");
        assert_eq!(t.batch_share_us, 0, "a dead forward pass is unattributable");
        assert_eq!(t.bfs_us, 0);
        assert_eq!(t.span_us, 200);
        assert_eq!(
            t.queue_wait_us + t.batch_share_us + t.bfs_us + t.overhead_us,
            t.span_us,
            "the phase identity must survive a panic: {t:?}"
        );
        assert_eq!(t.tenant.as_deref(), Some("acme"));
    }
    if qdgnn_obs::enabled() {
        let after = qdgnn_obs::snapshot();
        assert_eq!(
            after.counter("serve.request{outcome=\"worker_panicked\"}").unwrap_or(0)
                - before_panicked,
            2,
            "the labeled outcome counter must agree with the exemplar traces"
        );
    }
    assert_eq!(engine.stats().worker_panics, 1);
    engine.shutdown();
}
