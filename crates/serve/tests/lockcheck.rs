//! Runtime lock-order checking suite (requires `--features lockcheck`).
//!
//! Cargo feature unification arms the vendored parking_lot shim's
//! `lockcheck` for this whole build, so two things are tested here:
//!
//! 1. The checker itself catches a seeded inversion — two locks taken
//!    in opposite orders on two threads — deterministically, on the
//!    second thread's *first* acquisition, before any real deadlock can
//!    form, with both acquisition sites in the panic message. This is
//!    the runtime twin of the static QD010 rule's self-test in
//!    `qdgnn-analyze`.
//! 2. The serving engine runs a full submit/flush/shutdown cycle with
//!    every lock acquisition checked, proving its queue → breaker →
//!    in-flight-slot ordering is cycle-free in execution, not just
//!    under static analysis.

#![cfg(feature = "lockcheck")]

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use qdgnn_core::{AqdGnn, CsModel, GraphTensors, ModelConfig, OnlineStage};
use qdgnn_data::{presets, queries as qgen, AttrMode, Query};
use qdgnn_graph::attributed::AdjNorm;
use qdgnn_serve::{ServeConfig, ServeEngine};

#[test]
fn seeded_inversion_is_caught_deterministically() {
    let alpha = Arc::new(Mutex::new(0u32));
    let beta = Arc::new(Mutex::new(0u32));

    // Thread 1: alpha → beta. Runs to completion and records the edge.
    {
        let (alpha, beta) = (Arc::clone(&alpha), Arc::clone(&beta));
        std::thread::spawn(move || {
            let _a = alpha.lock();
            let _b = beta.lock();
        })
        .join()
        .expect("first order must succeed");
    }

    // Thread 2: beta → alpha. The alpha acquisition must panic — before
    // blocking, so this test cannot hang even though the opposite order
    // is already on record.
    let err = std::thread::spawn(move || {
        let _b = beta.lock();
        let _a = alpha.lock();
    })
    .join()
    .expect_err("inverted order must panic deterministically");

    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload must be a string");
    assert!(msg.contains("lock-order inversion"), "{msg}");
    assert!(
        msg.contains("the opposite order was established at"),
        "message must name the prior acquisition site: {msg}"
    );
    assert!(
        msg.matches("lockcheck.rs").count() >= 2,
        "both acquisition sites (this file) must be named: {msg}"
    );
}

fn stage_and_queries() -> (OnlineStage<'static>, Vec<Query>) {
    let data = presets::toy();
    let t = Arc::new(GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100));
    let queries = qgen::generate(&data, 12, 1, 2, AttrMode::FromCommunity, 7);
    let model: Arc<dyn CsModel> = Arc::new(AqdGnn::new(ModelConfig::fast(), t.d));
    (OnlineStage::new_shared(model, t, 0.5), queries)
}

#[test]
fn engine_lock_orders_are_cycle_free_under_load() {
    let (stage, queries) = stage_and_queries();
    let engine = ServeEngine::new(
        stage,
        ServeConfig { workers: 2, max_batch: 4, max_wait_us: 200, ..ServeConfig::default() },
    )
    .expect("engine must start");
    let pending: Vec<_> = queries
        .iter()
        .map(|q| engine.submit(q.clone()).expect("submit within capacity"))
        .collect();
    for p in pending {
        let reply = p.wait_timeout(Duration::from_secs(60)).expect("reply must arrive");
        reply.expect("toy queries must score");
    }
    // Shutdown joins workers — any ordering violation in the drain path
    // would have panicked a worker and surfaced via the supervisor.
    engine.shutdown();
}
