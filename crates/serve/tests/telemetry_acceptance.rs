//! Cross-surface outcome accounting: every terminal disposition the
//! engine can reach — answered, shed at admission, shed at deadline —
//! must appear with **identical counts** in the exemplar traces, the
//! labeled metric series, the buffered trace events, and the Prometheus
//! exposition. (The worker-panicked outcome needs fault injection and is
//! covered by the chaos suite.)
//!
//! This file is deliberately its own integration-test binary: the obs
//! registry is process-global, and the count assertions here must not
//! see series bumped by unrelated tests.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use qdgnn_core::{AqdGnn, CsModel, GraphTensors, ModelConfig, OnlineStage};
use qdgnn_data::{presets, queries as qgen, AttrMode, Query};
use qdgnn_graph::attributed::AdjNorm;
use qdgnn_obs::clock::{Clock, FakeClock};
use qdgnn_serve::{ServeConfig, ServeEngine, ServeError};

fn stage_and_queries() -> (OnlineStage<'static>, Vec<Query>) {
    let data = presets::toy();
    let t = Arc::new(GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100));
    let queries = qgen::generate(&data, 8, 1, 2, AttrMode::FromCommunity, 7);
    let model: Arc<dyn CsModel> = Arc::new(AqdGnn::new(ModelConfig::fast(), t.d));
    (OnlineStage::new_shared(model, t, 0.5), queries)
}

#[test]
fn every_outcome_agrees_across_exemplars_labels_events_and_exposition() {
    qdgnn_obs::record_events(true);
    let (stage, queries) = stage_and_queries();
    let clock = Arc::new(FakeClock::new());
    let engine = ServeEngine::with_clock(
        stage,
        ServeConfig {
            max_batch: 8,
            max_wait_us: 500,
            queue_capacity: 16,
            workers: 1,
            exemplar_k: 16,
            ..ServeConfig::default()
        },
        Arc::clone(&clock) as Arc<dyn Clock>,
    )
    .expect("engine must start");

    // answered ×2 (tenant "acme"): one batch released by max_wait.
    let a = engine
        .submit_labeled(queries[0].clone(), Some("acme"), None)
        .expect("queue has room");
    let b = engine
        .submit_labeled(queries[1].clone(), Some("acme"), None)
        .expect("queue has room");
    clock.advance_micros(600);
    assert!(a.wait_timeout(Duration::from_secs(60)).expect("flush").is_ok());
    assert!(b.wait_timeout(Duration::from_secs(60)).expect("flush").is_ok());

    // shed_deadline ×1: a 300µs budget expires in the queue before the
    // 500µs batch deadline can release it.
    let shed = engine
        .submit_with_deadline(queries[2].clone(), Some(Duration::from_micros(300)))
        .expect("queue has room");
    clock.advance_micros(400);
    match shed.wait_timeout(Duration::from_secs(60)).expect("shed reply") {
        Err(ServeError::DeadlineExceeded { .. }) => {}
        other => panic!("expected a dequeue-tier shed, got {other:?}"),
    }

    // answered ×1 (tenant "beta") — and teach the wait estimator that
    // queue waits run ~100ms, so the next admission check can shed.
    let slow = engine
        .submit_labeled(queries[3].clone(), Some("beta"), None)
        .expect("queue has room");
    clock.advance_micros(100_000);
    assert!(slow.wait_timeout(Duration::from_secs(60)).expect("flush").is_ok());

    // shed_admission ×1: with a request parked in the queue and the
    // estimator poisoned, a 1ms budget is rejected at the door.
    let parked = engine.submit(queries[4].clone()).expect("queue has room");
    match engine.submit_with_deadline(queries[5].clone(), Some(Duration::from_micros(1_000))) {
        Err(ServeError::DeadlineExceeded { waited_us: 0, .. }) => {}
        Err(other) => panic!("expected an admission-tier shed, got {other:?}"),
        Ok(_) => panic!("expected an admission-tier shed, got an admission"),
    }

    // answered ×1 (no tenant): the parked request drains at shutdown.
    engine.shutdown();
    assert!(parked.wait().is_ok(), "accepted request must drain at shutdown");

    let want: BTreeMap<&str, u64> =
        [("answered", 4), ("shed_admission", 1), ("shed_deadline", 1)].into_iter().collect();

    // Surface 1 — exemplar traces (every build). Shed traces can appear
    // in both the slowest and the recently-shed category, so count
    // distinct request ids per outcome.
    let mut seen = BTreeSet::new();
    let mut by_outcome: BTreeMap<&str, u64> = BTreeMap::new();
    for t in engine.exemplars() {
        assert_eq!(
            t.queue_wait_us + t.batch_share_us + t.bfs_us + t.overhead_us,
            t.span_us,
            "every exemplar must satisfy the phase identity: {t:?}"
        );
        if seen.insert(t.request_id) {
            *by_outcome.entry(t.outcome.as_str()).or_insert(0) += 1;
        }
    }
    assert_eq!(by_outcome, want, "exemplar traces disagree with the expected outcome counts");

    if !qdgnn_obs::enabled() {
        return; // the remaining surfaces only exist with the obs feature
    }

    // Surface 2 — labeled counters (bumped by every finished trace).
    let snap = qdgnn_obs::snapshot();
    for (outcome, n) in &want {
        let key = format!("serve.request{{outcome=\"{outcome}\"}}");
        assert_eq!(
            snap.counter(&key),
            Some(*n),
            "labeled counter {key} disagrees with the exemplar count"
        );
    }
    let tenant_counts = [
        ("serve.tenant_request{outcome=\"answered\",tenant=\"acme\"}", 2),
        ("serve.tenant_request{outcome=\"answered\",tenant=\"beta\"}", 1),
    ];
    for (key, n) in tenant_counts {
        assert_eq!(snap.counter(key), Some(n), "per-tenant series {key} has the wrong count");
    }
    // The span histogram sees exactly one observation per finished trace.
    for (outcome, n) in &want {
        let key = format!("serve.request_span{{outcome=\"{outcome}\"}}");
        let h = snap.hist(&key).unwrap_or_else(|| panic!("missing span histogram {key}"));
        assert_eq!(h.count, *n, "span histogram {key} has the wrong sample count");
    }

    // Surface 3 — buffered trace events, one per finished trace, each
    // carrying the full phase breakdown.
    let mut event_counts: BTreeMap<String, u64> = BTreeMap::new();
    for e in qdgnn_obs::take_events() {
        if let qdgnn_obs::events::Event::Trace { name, labels, fields, .. } = e {
            if name != "serve.request" {
                continue;
            }
            let outcome = labels
                .iter()
                .find(|(k, _)| k == "outcome")
                .map(|(_, v)| v.clone())
                .expect("trace event must carry an outcome label");
            *event_counts.entry(outcome).or_insert(0) += 1;
            for field in ["request_id", "queue_wait_us", "batch_share_us", "bfs_us", "span_us"] {
                assert!(
                    fields.iter().any(|(k, _)| k == field),
                    "trace event missing field {field}"
                );
            }
        }
    }
    for (outcome, n) in &want {
        assert_eq!(
            event_counts.get(*outcome).copied(),
            Some(*n),
            "trace-event count for outcome {outcome} disagrees"
        );
    }

    // Surface 4 — the Prometheus exposition renders the same series with
    // the same values.
    let prom = snap.to_prometheus();
    for (outcome, n) in &want {
        let line = format!("qdgnn_serve_request{{outcome=\"{outcome}\"}} {n}");
        assert!(prom.contains(&line), "exposition missing `{line}`:\n{prom}");
    }
    assert!(
        prom.contains("qdgnn_serve_tenant_request{outcome=\"answered\",tenant=\"acme\"} 2"),
        "exposition missing the per-tenant series:\n{prom}"
    );
}
