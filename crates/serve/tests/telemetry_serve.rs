//! Deterministic phase-attribution tests for request-scoped traces.
//!
//! The engine's trace contract is an *exact* partition of every
//! request's span: `queue_wait + batch_share + bfs + overhead == span`,
//! with no tolerance, in every build. Both tests here drive the engine
//! with an injected clock so each side of that identity is pinned:
//!
//! * a **frozen** `FakeClock` makes the forward pass and BFS take zero
//!   engine-time, so the whole span must land in queue wait;
//! * a **ticking** clock (advancing on every read) makes every phase
//!   strictly positive while the identity must still hold exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use qdgnn_core::{AqdGnn, CsModel, GraphTensors, ModelConfig, OnlineStage};
use qdgnn_data::{presets, queries as qgen, AttrMode, Query};
use qdgnn_graph::attributed::AdjNorm;
use qdgnn_obs::clock::{Clock, FakeClock};
use qdgnn_serve::{Pending, RequestTrace, ServeConfig, ServeEngine, TraceOutcome};

fn stage_and_queries() -> (OnlineStage<'static>, Vec<Query>) {
    let data = presets::toy();
    let t = Arc::new(GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100));
    let queries = qgen::generate(&data, 8, 1, 2, AttrMode::FromCommunity, 7);
    let model: Arc<dyn CsModel> = Arc::new(AqdGnn::new(ModelConfig::fast(), t.d));
    (OnlineStage::new_shared(model, t, 0.5), queries)
}

/// Dedup exemplar snapshots by request id (shed traces are eligible for
/// both the slowest and the recently-shed category).
fn distinct(traces: Vec<RequestTrace>) -> Vec<RequestTrace> {
    let mut seen = std::collections::BTreeSet::new();
    traces.into_iter().filter(|t| seen.insert(t.request_id)).collect()
}

fn assert_identity(t: &RequestTrace) {
    assert_eq!(
        t.queue_wait_us + t.batch_share_us + t.bfs_us + t.overhead_us,
        t.span_us,
        "phase attribution must partition the span exactly: {t:?}"
    );
}

#[test]
fn frozen_clock_attributes_the_whole_span_to_queue_wait() {
    let (stage, queries) = stage_and_queries();
    let clock = Arc::new(FakeClock::new());
    let engine = ServeEngine::with_clock(
        stage,
        ServeConfig {
            max_batch: 4,
            max_wait_us: 500,
            queue_capacity: 16,
            workers: 1,
            ..ServeConfig::default()
        },
        Arc::clone(&clock) as Arc<dyn Clock>,
    )
    .expect("engine must start");
    // Three requests admitted at engine time 0. The clock is frozen, so
    // the partial batch cannot flush no matter how much real time
    // passes.
    let pending: Vec<Pending> = queries
        .iter()
        .take(3)
        .map(|q| engine.submit(q.clone()).expect("queue has room"))
        .collect();
    std::thread::sleep(Duration::from_millis(20));
    // Crossing max_wait releases all three as ONE batch at engine time
    // 700. With the clock frozen there, the forward pass and every BFS
    // measure exactly zero engine-µs.
    clock.advance_micros(700);
    for p in pending {
        let reply = p.wait_timeout(Duration::from_secs(60)).expect("batch must flush");
        assert!(reply.is_ok(), "toy queries must be answerable");
    }
    let traces = distinct(engine.exemplars());
    assert_eq!(traces.len(), 3, "all three requests must leave exemplar traces");
    let mut positions: Vec<u64> = Vec::new();
    for t in &traces {
        assert_eq!(t.outcome, TraceOutcome::Answered);
        assert_eq!(t.admitted_us, 0);
        assert_eq!(t.batch_size, 3, "the three requests must flush as one batch");
        assert_eq!(t.queue_wait_us, 700, "the whole span is queue wait under a frozen clock");
        assert_eq!(t.batch_share_us, 0);
        assert_eq!(t.bfs_us, 0);
        assert_eq!(t.overhead_us, 0);
        assert_eq!(t.span_us, 700);
        assert!(!t.degraded);
        assert_identity(t);
        positions.push(t.batch_position);
    }
    positions.sort_unstable();
    assert_eq!(positions, vec![0, 1, 2], "batch positions must be distinct and dense");
    engine.shutdown();
}

/// A clock that advances a fixed step on **every** read: any two reads
/// are strictly ordered, so every measured phase is strictly positive.
struct TickClock {
    t: AtomicU64,
    step: u64,
}

impl Clock for TickClock {
    fn now_micros(&self) -> u64 {
        self.t.fetch_add(self.step, Ordering::SeqCst) + self.step
    }
}

#[test]
fn ticking_clock_keeps_the_identity_exact_with_every_phase_positive() {
    let (stage, queries) = stage_and_queries();
    // Step 64 so even an amortized share across a full batch stays > 0.
    let clock = Arc::new(TickClock { t: AtomicU64::new(0), step: 64 });
    let engine = ServeEngine::with_clock(
        stage,
        ServeConfig {
            max_batch: 4,
            max_wait_us: 1,
            queue_capacity: 16,
            workers: 1,
            exemplar_k: 16,
            ..ServeConfig::default()
        },
        Arc::clone(&clock) as Arc<dyn Clock>,
    )
    .expect("engine must start");
    let pending: Vec<Pending> = queries
        .iter()
        .take(3)
        .map(|q| engine.submit(q.clone()).expect("queue has room"))
        .collect();
    for p in pending {
        let reply = p.wait_timeout(Duration::from_secs(60)).expect("reply must arrive");
        assert!(reply.is_ok());
    }
    let traces = distinct(engine.exemplars());
    assert_eq!(traces.len(), 3);
    for t in &traces {
        assert_eq!(t.outcome, TraceOutcome::Answered);
        assert!(t.queue_wait_us > 0, "every clock read ticks, so queue wait must be > 0: {t:?}");
        assert!(t.batch_share_us > 0, "forward share must be > 0 under a ticking clock: {t:?}");
        assert!(t.bfs_us > 0, "per-query BFS time must be > 0 under a ticking clock: {t:?}");
        assert!(t.span_us > 0);
        assert_identity(t);
    }
    engine.shutdown();
}
