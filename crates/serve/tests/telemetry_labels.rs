//! Label-cardinality containment for the per-tenant serving series.
//!
//! Own integration binary on purpose: this test deliberately floods one
//! base metric past `MAX_LABEL_SETS`, and the obs registry is
//! process-global — the flood must not leak into the exact-count
//! assertions of the acceptance suite.

#[test]
fn tenant_label_cardinality_is_capped_not_unbounded() {
    if !qdgnn_obs::enabled() {
        return;
    }
    // Hammer one base name with far more tenants than MAX_LABEL_SETS:
    // the registry must collapse the excess into the overflow series
    // instead of growing without bound (a hostile or buggy caller
    // interpolating request ids into the tenant label must not OOM the
    // registry).
    let n = qdgnn_obs::MAX_LABEL_SETS + 40;
    for i in 0..n {
        let tenant = format!("tenant-{i}");
        qdgnn_obs::counter_with(
            "serve.tenant_request",
            &[("tenant", tenant.as_str()), ("outcome", "answered")],
        )
        .inc();
    }
    let snap = qdgnn_obs::snapshot();
    let series = snap
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("serve.tenant_request{"))
        .count();
    assert!(
        series <= qdgnn_obs::MAX_LABEL_SETS + 1,
        "label sets must be capped (got {series} series)"
    );
    let overflow = snap.counter("serve.tenant_request{overflow=\"true\"}").unwrap_or(0);
    assert!(overflow > 0, "excess label sets must collapse into the overflow series");
    assert!(
        snap.counter("obs.labels_dropped").unwrap_or(0) > 0,
        "dropped label sets must be visible in obs.labels_dropped"
    );
    // The overflow series still renders in the exposition.
    assert!(snap.to_prometheus().contains("qdgnn_serve_tenant_request{overflow=\"true\"}"));
}
